/**
 * @file
 * Query-latency harness implementation.
 */

#include "latency.h"

#include <algorithm>
#include <cmath>

#include "quantile.h"
#include "sim/logging.h"

namespace hwgc::workload
{

double
LatencyResult::percentile(double q) const
{
    panic_if(samples.empty(), "no latency samples");
    std::vector<double> sorted;
    sorted.reserve(samples.size());
    for (const auto &s : samples) {
        sorted.push_back(s.latencyMs);
    }
    std::sort(sorted.begin(), sorted.end());
    return quantileSorted(sorted, q);
}

double
LatencyResult::meanMs() const
{
    double sum = 0.0;
    for (const auto &s : samples) {
        sum += s.latencyMs;
    }
    return samples.empty() ? 0.0 : sum / double(samples.size());
}

double
LatencyResult::maxMs() const
{
    double m = 0.0;
    for (const auto &s : samples) {
        m = std::max(m, s.latencyMs);
    }
    return m;
}

namespace
{

/**
 * The shared service loop: a fixed issue schedule, one serving
 * thread, and stop-the-world preemption by the supplied pause
 * windows (sorted, non-overlapping). Issue times never depend on
 * completion times — the coordinated-omission correction.
 */
LatencyResult
serviceLoop(const LatencyParams &params,
            const std::vector<PauseWindow> &pauses)
{
    panic_if(params.warmupQueries >= params.totalQueries,
             "warm-up swallows every query");

    Rng rng(params.seed);
    LatencyResult result;
    result.samples.reserve(params.totalQueries - params.warmupQueries);

    double server_free = 0.0;
    std::size_t pause_cursor = 0;
    for (unsigned q = 0; q < params.totalQueries; ++q) {
        const double issue = params.issueIntervalMs * double(q);
        double start = std::max(issue, server_free);
        bool near_pause = false;

        // Service is preempted by any pause it overlaps: the whole
        // process (including the serving thread) stops.
        double service = params.serviceMeanMs +
            rng.uniform() * params.serviceJitterMs;
        while (pause_cursor < pauses.size() &&
               pauses[pause_cursor].endMs <= start) {
            ++pause_cursor;
        }
        std::size_t pc = pause_cursor;
        double done = start + service;
        while (pc < pauses.size() && pauses[pc].startMs < done) {
            near_pause = true;
            done += pauses[pc].endMs - pauses[pc].startMs;
            ++pc;
        }
        server_free = done;

        if (q >= params.warmupQueries) {
            result.samples.push_back({issue, done - issue, near_pause});
        }
    }
    return result;
}

} // namespace

LatencyResult
runLatencyExperiment(const LatencyParams &params,
                     const std::vector<double> &pause_durations_ms,
                     double mutator_ms_between_gcs)
{
    // Lay out the pause timeline for the whole run: mutator period,
    // pause, mutator period, pause, ... cycling the measured pauses.
    const double run_ms =
        params.issueIntervalMs * double(params.totalQueries) + 1000.0;
    std::vector<PauseWindow> pauses;
    if (!pause_durations_ms.empty() && mutator_ms_between_gcs > 0.0) {
        double t = mutator_ms_between_gcs;
        std::size_t i = 0;
        while (t < run_ms) {
            const double d = pause_durations_ms[i %
                                                pause_durations_ms.size()];
            pauses.push_back({t, t + d});
            t += d + mutator_ms_between_gcs;
            ++i;
        }
    }
    return serviceLoop(params, pauses);
}

LatencyResult
runLatencyTimeline(const LatencyParams &params,
                   const std::vector<PauseWindow> &windows,
                   double period_ms)
{
    std::vector<PauseWindow> pauses;
    if (!windows.empty() && period_ms > 0.0) {
        for (std::size_t i = 1; i < windows.size(); ++i) {
            panic_if(windows[i].startMs < windows[i - 1].endMs,
                     "pause windows overlap or are unsorted");
        }
        panic_if(windows.back().endMs > period_ms,
                 "pause window extends past the tiling period");
        const double run_ms =
            params.issueIntervalMs * double(params.totalQueries) +
            1000.0;
        for (double base = 0.0; base < run_ms; base += period_ms) {
            for (const PauseWindow &w : windows) {
                pauses.push_back({base + w.startMs, base + w.endMs});
            }
        }
    }
    return serviceLoop(params, pauses);
}

} // namespace hwgc::workload
