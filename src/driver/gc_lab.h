/**
 * @file
 * The experiment harness shared by every bench, example and
 * integration test.
 *
 * GcLab reproduces the paper's methodology (§VI-A): build a
 * benchmark-profile heap, then for every GC pause of the run execute
 * the *same* pause on both collectors — snapshot the heap image, run
 * the software collector (CPU cost model), restore the snapshot, run
 * the hardware unit, optionally verify both against the reachability
 * oracle — then let the mutator churn the heap and continue from the
 * hardware collector's result. Results are reported per pause and
 * averaged "across all GC pauses during the benchmark execution".
 */

#ifndef HWGC_DRIVER_GC_LAB_H
#define HWGC_DRIVER_GC_LAB_H

#include <memory>
#include <vector>

#include "core/hwgc_device.h"
#include "cpu/core_model.h"
#include "gc/sw_collector.h"
#include "workload/dacapo.h"

namespace hwgc::driver
{

/** Lab-wide configuration. */
struct LabConfig
{
    core::HwgcConfig hwgc;
    cpu::CoreParams core;
    runtime::HeapParams heap;

    bool runSw = true;   //!< Execute the CPU baseline each pause.
    bool runHw = true;   //!< Execute the accelerator each pause.
    bool verify = false; //!< Oracle-check marks + swept heap.
};

/** Snapshot of interesting hardware counters after one pause. */
struct HwCounters
{
    std::uint64_t tracerRequests = 0;
    std::uint64_t spillWrites = 0;
    std::uint64_t spillReads = 0;
    std::uint64_t entriesSpilled = 0;
    std::uint64_t markerTlbMisses = 0;
    std::uint64_t tracerTlbMisses = 0;
    std::uint64_t ptwWalks = 0;
    std::uint64_t markCacheHits = 0;
    std::uint64_t busBusyCycles = 0;
    std::uint64_t busCycles = 0;
    std::uint64_t dramBytes = 0;
    std::uint64_t dramReads = 0;
    std::uint64_t dramWrites = 0;
    std::uint64_t dramActivates = 0;
};

/** Results of one GC pause, on both engines. */
struct PauseResult
{
    // Software (CPU) side.
    Tick swMarkCycles = 0;
    Tick swSweepCycles = 0;
    std::uint64_t swDramBytes = 0;
    std::uint64_t swDramReads = 0;
    std::uint64_t swDramWrites = 0;
    std::uint64_t swDramActivates = 0;

    // Hardware side.
    Tick hwMarkCycles = 0;
    Tick hwSweepCycles = 0;
    HwCounters hw;

    // Workload facts (identical for both engines by construction).
    std::uint64_t objectsMarked = 0;
    std::uint64_t cellsFreed = 0;
    std::uint64_t liveObjects = 0;
    std::uint64_t blocks = 0;
};

/** The lab. */
class GcLab
{
  public:
    GcLab(const workload::BenchmarkProfile &profile,
          const LabConfig &config = {});
    ~GcLab();

    /** Runs every pause of the profile; returns per-pause results. */
    const std::vector<PauseResult> &run();

    /** Runs @p pauses pauses only (for quick sweeps). */
    const std::vector<PauseResult> &run(unsigned pauses);

    /** @name Aggregates over the completed run @{ */
    double avgSwMarkCycles() const;
    double avgSwSweepCycles() const;
    double avgHwMarkCycles() const;
    double avgHwSweepCycles() const;
    /** @} */

    /** @name Component access (valid after construction) @{ */
    runtime::Heap &heap() { return *heap_; }
    core::HwgcDevice &device() { return *device_; }
    cpu::CoreModel &core() { return *core_; }
    mem::MemDevice &cpuMemory() { return *cpuMemory_; }
    mem::Dram *cpuDram() { return cpuDramPtr_; }
    workload::GraphBuilder &builder() { return *builder_; }
    const std::vector<PauseResult> &results() const { return results_; }
    const workload::BenchmarkProfile &profile() const { return profile_; }
    /** @} */

  private:
    PauseResult runOnePause();

    workload::BenchmarkProfile profile_;
    LabConfig config_;

    mem::PhysMem mem_;
    std::unique_ptr<runtime::Heap> heap_;
    std::unique_ptr<workload::GraphBuilder> builder_;

    // CPU side (atomic charging).
    std::unique_ptr<mem::MemDevice> cpuMemory_;
    mem::Dram *cpuDramPtr_ = nullptr;
    std::unique_ptr<cpu::CoreModel> core_;
    std::unique_ptr<gc::SwCollector> swCollector_;

    // Hardware side.
    std::unique_ptr<core::HwgcDevice> device_;

    // Telemetry registration of the CPU side (the device registers
    // its own components under its own prefix).
    std::vector<std::unique_ptr<stats::Group>> statGroups_;
    std::vector<std::string> statPaths_;

    std::vector<PauseResult> results_;
};

} // namespace hwgc::driver

#endif // HWGC_DRIVER_GC_LAB_H
