file(REMOVE_RECURSE
  "libhwgc_workload.a"
)
