/**
 * @file
 * Scenario: an SoC architect sizing the GC unit for a new chip. Sweeps
 * the main design parameters — sweeper count, mark-queue size,
 * compression, mark-bit cache — and reports performance next to the
 * area model, i.e. the Fig 19/20/21/22 trade-off in one tool.
 *
 *   $ ./build/examples/design_space [benchmark]
 */

#include <cstdio>
#include <string>

#include "driver/gc_lab.h"
#include "model/area.h"

namespace
{

using namespace hwgc;

struct DesignPoint
{
    std::string label;
    core::HwgcConfig config;
};

void
evaluate(const workload::BenchmarkProfile &profile,
         const DesignPoint &point)
{
    driver::LabConfig lab_config;
    lab_config.runSw = false;
    lab_config.hwgc = point.config;
    driver::GcLab lab(profile, lab_config);
    lab.run(2);

    const model::AreaModel area;
    std::printf("  %-22s %9.3f ms %9.3f ms %8.3f mm^2 (%4.1f%%)\n",
                point.label.c_str(),
                double(lab.avgHwMarkCycles()) / 1e6,
                double(lab.avgHwSweepCycles()) / 1e6,
                area.hwgcArea(point.config).total(),
                100.0 * area.ratio(point.config));
}

} // namespace

int
main(int argc, char **argv)
{
    hwgc::telemetry::Session session(argc, argv);
    const std::string bench = argc > 1 ? argv[1] : "avrora";
    const auto profile = workload::dacapoProfile(bench);

    std::printf("design-space sweep on '%s'\n", bench.c_str());
    std::printf("  %-22s %12s %12s %16s\n", "design point", "mark",
                "sweep", "unit area");

    std::vector<DesignPoint> points;
    {
        DesignPoint p;
        p.label = "baseline";
        points.push_back(p);
    }
    for (const unsigned sweepers : {1u, 4u, 8u}) {
        DesignPoint p;
        p.label = std::to_string(sweepers) + " sweepers";
        p.config.numSweepers = sweepers;
        points.push_back(p);
    }
    {
        DesignPoint p;
        p.label = "2KB mark queue";
        p.config.markQueueEntries = 128;
        points.push_back(p);
    }
    {
        DesignPoint p;
        p.label = "compressed refs";
        p.config.compressRefs = true;
        points.push_back(p);
    }
    {
        DesignPoint p;
        p.label = "64-entry markbit cache";
        p.config.markBitCacheEntries = 64;
        points.push_back(p);
    }
    {
        DesignPoint p;
        p.label = "shared 16KB cache";
        p.config.sharedCache = true;
        points.push_back(p);
    }

    for (const auto &point : points) {
        evaluate(profile, point);
    }
    std::printf("\n(mark/sweep are per-pause averages over 2 pauses; "
                "area from the Fig 22 model)\n");
    return 0;
}
