/**
 * @file
 * Google-benchmark microbenchmarks for the hot simulator primitives:
 * these guard the simulator's own performance (wall-clock per
 * simulated cycle), not the paper's results.
 */

#include <benchmark/benchmark.h>

#include "core/mark_queue.h"
#include "mem/dram.h"
#include "mem/ideal_mem.h"
#include "runtime/heap.h"
#include "sim/random.h"
#include "workload/graph_gen.h"

namespace
{

using namespace hwgc;

void
BM_RngNext(benchmark::State &state)
{
    Rng rng(1);
    for (auto _ : state) {
        benchmark::DoNotOptimize(rng.next());
    }
}
BENCHMARK(BM_RngNext);

void
BM_PhysMemWordRoundTrip(benchmark::State &state)
{
    mem::PhysMem mem;
    Rng rng(2);
    for (auto _ : state) {
        const Addr addr = alignDown(rng.below(1 << 26), 8);
        mem.writeWord(addr, addr);
        benchmark::DoNotOptimize(mem.readWord(addr));
    }
}
BENCHMARK(BM_PhysMemWordRoundTrip);

void
BM_DramAtomicAccess(benchmark::State &state)
{
    mem::PhysMem mem;
    mem::Dram dram("d", mem::DramParams{}, mem);
    Rng rng(3);
    std::array<Word, mem::maxReqWords> scratch{};
    Tick now = 0;
    for (auto _ : state) {
        mem::MemRequest req;
        req.paddr = alignDown(rng.below(1 << 26), 64);
        req.size = 64;
        req.op = mem::Op::Read;
        req.timingOnly = true;
        benchmark::DoNotOptimize(dram.accessAtomic(req, now, scratch));
        now += 100;
    }
}
BENCHMARK(BM_DramAtomicAccess);

void
BM_HeapAllocate(benchmark::State &state)
{
    auto mem = std::make_unique<mem::PhysMem>();
    auto heap = std::make_unique<runtime::Heap>(*mem);
    std::uint64_t count = 0;
    for (auto _ : state) {
        if (++count == 2'000'000) { // Stay inside the 256 MiB reserve.
            state.PauseTiming();
            heap.reset();
            mem = std::make_unique<mem::PhysMem>();
            heap = std::make_unique<runtime::Heap>(*mem);
            count = 0;
            state.ResumeTiming();
        }
        benchmark::DoNotOptimize(heap->allocate(3, 4));
    }
}
BENCHMARK(BM_HeapAllocate);

void
BM_GraphBuild(benchmark::State &state)
{
    for (auto _ : state) {
        mem::PhysMem mem;
        runtime::Heap heap(mem);
        workload::GraphParams params;
        params.liveObjects = std::uint64_t(state.range(0));
        params.garbageObjects = params.liveObjects / 2;
        params.seed = 9;
        workload::GraphBuilder builder(heap, params);
        builder.build();
        benchmark::DoNotOptimize(heap.objects().size());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GraphBuild)->Arg(1000)->Arg(10000);

void
BM_ReachabilityOracle(benchmark::State &state)
{
    mem::PhysMem mem;
    runtime::Heap heap(mem);
    workload::GraphParams params;
    params.liveObjects = 10000;
    params.garbageObjects = 5000;
    params.seed = 10;
    workload::GraphBuilder builder(heap, params);
    builder.build();
    for (auto _ : state) {
        benchmark::DoNotOptimize(heap.computeReachable().size());
    }
}
BENCHMARK(BM_ReachabilityOracle);

void
BM_MarkQueueOnChip(benchmark::State &state)
{
    mem::PhysMem mem;
    mem::IdealMem ideal("m", mem::IdealMemParams{}, mem);
    mem::Interconnect bus("bus", mem::InterconnectParams{}, ideal);
    mem::BusPort port(bus, nullptr, "spill");
    core::HwgcConfig config;
    core::MarkQueue queue("q", config, &port, 0x6000'0000, 4 << 20);
    bus.setClientResponder(port.clientId(), &queue);
    for (auto _ : state) {
        queue.enqueue(0x1000'0000);
        benchmark::DoNotOptimize(queue.dequeue());
    }
}
BENCHMARK(BM_MarkQueueOnChip);

} // namespace

BENCHMARK_MAIN();
