/**
 * @file
 * A bank-aware DRAM controller timing model.
 *
 * Models the memory system of paper Table I: single-rank DDR3-2000
 * with 14-14-14-47 ns timings, an FR-FCFS memory access scheduler with
 * 16 reads / 8 writes in flight, and an open-page row-buffer policy.
 * A FIFO scheduler and a closed-page policy are selectable for the
 * §VI-A ablation ("performance was significantly improved changing
 * from FIFO MAS to FR-FCFS and increasing outstanding reads 8→16").
 *
 * The model is deliberately at the level of FireSim's DDR3 timing
 * model: per-bank row-buffer state, a shared data bus with burst
 * occupancy, and first-ready scheduling — not a full command-level
 * DDR state machine.
 */

#ifndef HWGC_MEM_DRAM_H
#define HWGC_MEM_DRAM_H

#include <deque>
#include <queue>
#include <vector>

#include "mem/mem_device.h"
#include "mem/phys_mem.h"
#include "sim/spsc_ring.h"
#include "sim/stats.h"

namespace hwgc::mem
{

/** DRAM configuration (defaults follow paper Table I). */
struct DramParams
{
    enum class Scheduler { FrFcfs, Fifo };
    enum class PagePolicy { Open, Closed };

    unsigned banks = 8;
    std::uint64_t rowBytes = 2048;

    Tick tCAS = 14;   //!< Column access strobe latency (ns = cycles).
    Tick tRCD = 14;   //!< Row-to-column delay.
    Tick tRP = 14;    //!< Row precharge.
    Tick tRAS = 47;   //!< Row active time.

    unsigned maxReads = 16;  //!< Max reads in flight (Table I).
    unsigned maxWrites = 8;  //!< Max writes in flight (Table I).

    /** Peak data-bus bandwidth in bytes per core cycle (DDR3-2000). */
    double busBytesPerCycle = 16.0;

    /** Controller frontend/backend pipeline latency. */
    Tick frontendLatency = 10;

    Scheduler scheduler = Scheduler::FrFcfs;
    PagePolicy pagePolicy = PagePolicy::Open;

    /** Bucket width of the bandwidth time series (Fig 16). */
    Tick bandwidthBucket = 10000;
};

/** The DRAM controller + device timing model. */
class Dram : public MemDevice
{
  public:
    Dram(std::string name, const DramParams &params, PhysMem &mem);

    // MemDevice interface.
    bool canAccept(const MemRequest &req) const override;
    bool canAcceptBsp(const MemRequest &req, unsigned pendingReads,
                      unsigned pendingWrites) const override;
    void sendRequest(const MemRequest &req, Tick now) override;
    Tick accessAtomic(const MemRequest &req, Tick now,
                      std::array<Word, maxReqWords> &rdata) override;
    void resetStats() override;
    void resetTimingState() override { resetBankState(); }

    // Clocked interface.
    void tick(Tick now) override;
    bool busy() const override;
    Tick nextWakeup(Tick now) const override;
    CycleClass cycleClass(Tick now) const override;
    void save(checkpoint::Serializer &ser) const override;
    void restore(checkpoint::Deserializer &des) override;

    /**
     * ParallelBsp: applies the completions this cycle's tick retired.
     * The functional PhysMem access, the in-flight decrement and the
     * upstream onResponse all cross partition boundaries, so the tick
     * stages them and they run here, on the commit thread.
     */
    void bspCommit(Tick now) override;

    /** Resets bank/row-buffer state (between experiment phases). */
    void resetBankState();

    /** Introspection for debugging stuck traffic. */
    struct DebugState
    {
        std::size_t queued = 0;
        std::size_t completionsPending = 0;
        unsigned readsInFlight = 0;
        unsigned writesInFlight = 0;
        Tick firstBankReadyAt = 0;
        Tick busFreeAt = 0;
    };
    DebugState debugState() const;

    const DramParams &params() const { return params_; }

    /** @name Statistics @{ */
    const stats::Scalar &numReads() const { return numReads_; }
    const stats::Scalar &numWrites() const { return numWrites_; }
    const stats::Scalar &bytesRead() const { return bytesRead_; }
    const stats::Scalar &bytesWritten() const { return bytesWritten_; }
    const stats::Scalar &rowHits() const { return rowHits_; }
    const stats::Scalar &rowMisses() const { return rowMisses_; }
    const stats::Scalar &numActivates() const { return numActivates_; }
    const stats::TimeSeries &bandwidth() const { return bandwidth_; }
    const stats::Histogram &latency() const { return latency_; }
    /** @} */

    void
    addStats(stats::Group &g) override
    {
        g.add(&numReads_);
        g.add(&numWrites_);
        g.add(&bytesRead_);
        g.add(&bytesWritten_);
        g.add(&rowHits_);
        g.add(&rowMisses_);
        g.add(&numActivates_);
        g.add(&bandwidth_);
        g.add(&latency_);
    }

  private:
    struct Bank
    {
        bool rowOpen = false;
        std::uint64_t openRow = 0;
        Tick readyAt = 0;       //!< Earliest next column command.
        Tick activatedAt = 0;   //!< For tRAS accounting.
    };

    struct Pending
    {
        MemRequest req;
        Tick arrived = 0;       //!< When eligible for scheduling.
        bool issued = false;
    };

    struct Completion
    {
        Tick at;
        MemRequest req;
        bool operator>(const Completion &o) const { return at > o.at; }
    };

    unsigned bankIndex(Addr addr) const;
    std::uint64_t rowIndex(Addr addr) const;

    /**
     * Computes the service completion time of an access starting no
     * earlier than @p start, updating bank and bus state.
     */
    Tick serviceAccess(const MemRequest &req, Tick start);

    /** Picks the next queue index to issue, or -1 if none is ready. */
    int pickNext(Tick now) const;

    void recordTraffic(const MemRequest &req, Tick when);

    DramParams params_;
    PhysMem &mem_;

    std::vector<Bank> banks_;
    Tick busFreeAt_ = 0;

    std::deque<Pending> queue_;
    unsigned readsInFlight_ = 0;
    unsigned writesInFlight_ = 0;
    std::priority_queue<Completion, std::vector<Completion>,
                        std::greater<Completion>> completions_;

    /** Completions retired during a ParallelBsp evaluate tick, in
     *  pop order; applied and delivered at bspCommit(). SPSC: the
     *  worker ticking the controller produces, the commit thread
     *  consumes after the join. Sized to maxReads + maxWrites — the
     *  most completions that can ever be outstanding at once. */
    SpscRing<MemRequest> stagedDeliveries_;

    stats::Scalar numReads_{"numReads"};
    stats::Scalar numWrites_{"numWrites"};
    stats::Scalar bytesRead_{"bytesRead"};
    stats::Scalar bytesWritten_{"bytesWritten"};
    stats::Scalar rowHits_{"rowHits"};
    stats::Scalar rowMisses_{"rowMisses"};
    stats::Scalar numActivates_{"numActivates"};
    stats::TimeSeries bandwidth_;
    stats::Histogram latency_{"accessLatency"};
};

} // namespace hwgc::mem

#endif // HWGC_MEM_DRAM_H
