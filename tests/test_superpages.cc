/**
 * @file
 * Tests for 2 MiB superpage support (paper §VII: "large heaps could
 * use superpages instead of 4KB pages").
 */

#include <gtest/gtest.h>

#include "core/hwgc_device.h"
#include "gc/verifier.h"
#include "mem/page_table.h"
#include "mem/tlb.h"
#include "workload/graph_gen.h"

namespace hwgc
{
namespace
{

constexpr std::uint64_t superBytes = 2ULL << 20;

TEST(Superpages, MapSuperTranslates)
{
    mem::PhysMem mem;
    mem::PageTable table(mem, 0x10000, 4 << 20);
    table.mapSuper(0x4000'0000, 0x4000'0000, 2 * superBytes);
    EXPECT_EQ(table.translate(0x4000'0000).value(), 0x4000'0000u);
    EXPECT_EQ(table.translate(0x4012'3456).value(), 0x4012'3456u);
    EXPECT_FALSE(table.translate(0x4040'0000).has_value());
}

TEST(Superpages, WalkStopsAtLevelOne)
{
    mem::PhysMem mem;
    mem::PageTable table(mem, 0x10000, 4 << 20);
    table.mapSuper(0x4000'0000, 0x4000'0000, superBytes);
    const auto walk = table.walk(0x4000'1234);
    EXPECT_TRUE(walk.valid);
    EXPECT_EQ(walk.levels, mem::ptLevels - 1); // One fewer PTE fetch.
    EXPECT_EQ(walk.pageBits, 21u);
    EXPECT_EQ(walk.pa, 0x4000'1234u);
}

TEST(Superpages, FewerTablePagesThanBasePages)
{
    mem::PhysMem mem;
    mem::PageTable small(mem, 0x10000, 8 << 20);
    small.map(0x4000'0000, 0x4000'0000, 8 * superBytes);
    mem::PhysMem mem2;
    mem::PageTable super(mem2, 0x10000, 8 << 20);
    super.mapSuper(0x4000'0000, 0x4000'0000, 8 * superBytes);
    EXPECT_LT(super.pagesAllocated(), small.pagesAllocated());
}

TEST(Superpages, TlbEntryCoversWholeSuperpage)
{
    mem::TlbArray tlb("t", 2);
    tlb.insert(0x4000'0000, 0x4000'0000, 21);
    // Any address within the 2 MiB page hits the single entry.
    EXPECT_EQ(tlb.lookup(0x401f'ff00).value(), 0x401f'ff00u);
    EXPECT_EQ(tlb.lookup(0x4000'0008).value(), 0x4000'0008u);
    EXPECT_FALSE(tlb.lookup(0x4020'0000).has_value());
    EXPECT_EQ(tlb.hits(), 2u);
}

TEST(Superpages, MixedPageSizesCoexistInTlb)
{
    mem::TlbArray tlb("t", 4);
    tlb.insert(0x4000'0000, 0x4000'0000, 21);
    tlb.insert(0x5000'0000, 0x6000'0000, 12);
    EXPECT_EQ(tlb.lookup(0x4010'0000).value(), 0x4010'0000u);
    EXPECT_EQ(tlb.lookup(0x5000'0abc).value(), 0x6000'0abcu);
    EXPECT_FALSE(tlb.lookup(0x5000'1000).has_value()); // 4K reach.
}

TEST(Superpages, HeapMapsAndCollectsCorrectly)
{
    mem::PhysMem mem;
    runtime::HeapParams heap_params;
    heap_params.useSuperpages = true;
    runtime::Heap heap(mem, heap_params);
    workload::GraphParams graph;
    graph.liveObjects = 1500;
    graph.garbageObjects = 800;
    graph.seed = 31;
    workload::GraphBuilder builder(heap, graph);
    builder.build();
    heap.clearAllMarks();
    heap.publishRoots();

    core::HwgcDevice device(mem, heap.pageTable(), core::HwgcConfig{});
    device.configure(heap);
    device.collect();

    const auto marks = gc::verifyMarks(heap);
    EXPECT_TRUE(marks.ok) << marks.error;
    const auto swept = gc::verifySweptHeap(heap);
    EXPECT_TRUE(swept.ok) << swept.error;
}

TEST(Superpages, ReduceWalkTraffic)
{
    auto walks_with = [](bool superpages) {
        mem::PhysMem mem;
        runtime::HeapParams heap_params;
        heap_params.useSuperpages = superpages;
        runtime::Heap heap(mem, heap_params);
        workload::GraphParams graph;
        graph.liveObjects = 4000;
        graph.garbageObjects = 2000;
        graph.seed = 32;
        workload::GraphBuilder builder(heap, graph);
        builder.build();
        heap.clearAllMarks();
        heap.publishRoots();
        core::HwgcDevice device(mem, heap.pageTable(),
                                core::HwgcConfig{});
        device.configure(heap);
        device.runMark();
        return device.ptw().walksStarted();
    };
    EXPECT_LT(walks_with(true), walks_with(false) / 4);
}

TEST(SuperpagesDeathTest, MisalignedMapSuperPanics)
{
    mem::PhysMem mem;
    mem::PageTable table(mem, 0x10000, 4 << 20);
    EXPECT_DEATH(table.mapSuper(0x4000'1000, 0x4000'1000, superBytes),
                 "superpage aligned");
}

} // namespace
} // namespace hwgc
