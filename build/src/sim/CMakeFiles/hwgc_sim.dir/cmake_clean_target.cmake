file(REMOVE_RECURSE
  "libhwgc_sim.a"
)
