/**
 * @file
 * In-order core cost model implementation.
 */

#include "core_model.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "sim/checkpoint.h"

namespace hwgc::cpu
{

CoreModel::CoreModel(std::string name, const CoreParams &params,
                     mem::PhysMem &mem,
                     const mem::PageTable &page_table,
                     mem::MemDevice &memory)
    : params_(params), mem_(mem), pageTable_(page_table),
      l2_(name + ".l2", params.l2, nullptr, &memory),
      l1d_(name + ".l1d", params.l1d, &l2_, nullptr),
      dtlb_(name + ".dtlb", params.dtlbEntries)
{
}

Addr
CoreModel::translate(Addr va)
{
    if (const auto pa = dtlb_.lookup(va)) {
        return *pa;
    }
    // Rocket's PTW fetches PTEs through the L1 data cache, where the
    // hot page-table pages live during a GC.
    const mem::PageTable::WalkResult walk = pageTable_.walk(va);
    for (unsigned level = 0; level < walk.levels; ++level) {
        cycles_ += l1d_.access(walk.pteAddr[level], wordBytes, false,
                               cycles_);
    }
    fatal_if(!walk.valid, "CPU access to unmapped VA %#llx",
             (unsigned long long)va);
    dtlb_.insert(va, walk.pa, walk.pageBits);
    return walk.pa;
}

Word
CoreModel::load(Addr va)
{
    ++instrs_;
    ++loads_;
    const Addr pa = translate(va);
    cycles_ += l1d_.access(pa, wordBytes, false, cycles_);
    return mem_.readWord(pa);
}

void
CoreModel::store(Addr va, Word value)
{
    ++instrs_;
    ++stores_;
    const Addr pa = translate(va);
    const Tick latency = l1d_.access(pa, wordBytes, true, cycles_);
    cycles_ += params_.nonBlockingStores
        ? std::min<Tick>(latency, params_.l1d.hitLatency) : latency;
    mem_.writeWord(pa, value);
}

Word
CoreModel::amoFetchOr(Addr va, Word operand)
{
    ++instrs_;
    ++loads_;
    const Addr pa = translate(va);
    // AMOs occupy the cache port for a read-modify-write.
    cycles_ += l1d_.access(pa, wordBytes, true, cycles_);
    ++cycles_;
    return mem_.fetchOrWord(pa, operand);
}

void
CoreModel::branch(unsigned site, bool taken)
{
    ++instrs_;
    ++cycles_;
    std::uint8_t &counter = predictor_[site]; // 2-bit saturating.
    const bool predicted = counter >= 2;
    if (predicted != taken) {
        ++mispredicts_;
        cycles_ += params_.branchMispredictPenalty;
    }
    if (taken && counter < 3) {
        ++counter;
    } else if (!taken && counter > 0) {
        --counter;
    }
}

void
CoreModel::flushMicroarchState()
{
    l1d_.flush();
    l2_.flush();
    dtlb_.flush();
    predictor_.clear();
}

void
CoreModel::save(checkpoint::Serializer &ser) const
{
    l2_.save(ser);
    l1d_.save(ser);
    dtlb_.save(ser);
    ser.putU64(cycles_);
    // Unordered-map iteration order is nondeterministic; sort so the
    // image is byte-stable across runs.
    std::vector<std::pair<unsigned, std::uint8_t>> sites(
        predictor_.begin(), predictor_.end());
    std::sort(sites.begin(), sites.end());
    ser.putU64(sites.size());
    for (const auto &[site, counter] : sites) {
        ser.putU64(site);
        ser.putU64(counter);
    }
    checkpoint::putStat(ser, instrs_);
    checkpoint::putStat(ser, mispredicts_);
    checkpoint::putStat(ser, loads_);
    checkpoint::putStat(ser, stores_);
}

void
CoreModel::restore(checkpoint::Deserializer &des)
{
    l2_.restore(des);
    l1d_.restore(des);
    dtlb_.restore(des);
    cycles_ = des.getU64();
    predictor_.clear();
    const std::uint64_t num_sites = des.getU64();
    for (std::uint64_t i = 0; i < num_sites; ++i) {
        const unsigned site = unsigned(des.getU64());
        predictor_[site] = std::uint8_t(des.getU64());
    }
    checkpoint::getStat(des, instrs_);
    checkpoint::getStat(des, mispredicts_);
    checkpoint::getStat(des, loads_);
    checkpoint::getStat(des, stores_);
}

void
CoreModel::resetStats()
{
    instrs_.reset();
    mispredicts_.reset();
    loads_.reset();
    stores_.reset();
    l1d_.resetStats();
    l2_.resetStats();
    dtlb_.resetStats();
}

} // namespace hwgc::cpu
