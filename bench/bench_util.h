/**
 * @file
 * Shared formatting and aggregation helpers for the per-figure bench
 * binaries. Every bench prints the rows/series its paper figure
 * reports, in plain text, so EXPERIMENTS.md can quote them directly.
 */

#ifndef HWGC_BENCH_BENCH_UTIL_H
#define HWGC_BENCH_BENCH_UTIL_H

#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "sim/logging.h"
#include "sim/profiler.h"
#include "sim/telemetry.h"
#include "sim/types.h"
#include "workload/quantile.h"

namespace hwgc::bench
{

/** Milliseconds of simulated time for a cycle count (1 GHz clock). */
inline double
msFromCycles(double cycles)
{
    return cycles / 1e6;
}

// Shared quantile helpers (range-clamped: p99.9 of fewer than 1000
// samples is the max sample, never an out-of-range read). Benches
// report percentiles through these, not ad-hoc index arithmetic.
using workload::nearestRankSorted;
using workload::quantile;
using workload::quantileSorted;

/** Geometric mean of a list of ratios. */
inline double
geomean(const std::vector<double> &values)
{
    if (values.empty()) {
        return 0.0;
    }
    double log_sum = 0.0;
    for (const double v : values) {
        log_sum += std::log(v);
    }
    return std::exp(log_sum / double(values.size()));
}

/** Prints a banner naming the figure being reproduced. */
inline void
banner(const char *figure, const char *claim)
{
    std::printf("==============================================================\n");
    std::printf("%s\n", figure);
    std::printf("  paper: %s\n", claim);
    std::printf("==============================================================\n");
}

/** Wall-clock stopwatch for host-side simulation-speed reporting. */
class HostTimer
{
  public:
    HostTimer() : start_(std::chrono::steady_clock::now()) {}

    /** Seconds elapsed since construction (or the last restart()). */
    double
    seconds() const
    {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start_)
            .count();
    }

    void restart() { start_ = std::chrono::steady_clock::now(); }

  private:
    std::chrono::steady_clock::time_point start_;
};

/**
 * Emits one JSON line of simulation-speed reporting — host wall-clock
 * and simulated-cycles-per-host-second (MIPS-style) — so the perf
 * trajectory (BENCH_*.json) can track kernel speed across PRs.
 * @p host_threads is the worker count the kernel ran with (1 for the
 * single-threaded dense/event kernels).
 */
inline void
printKernelSpeed(const char *bench, const char *kernel,
                 double host_seconds, double sim_cycles,
                 unsigned host_threads = 1)
{
    const double rate =
        host_seconds > 0.0 ? sim_cycles / host_seconds : 0.0;
    // Bench and kernel labels can carry user-supplied text (partition
    // specs, config summaries); escape them so the line stays JSON.
    std::printf("{\"bench\":\"%s\",\"kernel\":\"%s\","
                "\"host_threads\":%u,"
                "\"host_seconds\":%.6f,\"sim_cycles\":%.0f,"
                "\"cycles_per_host_second\":%.0f}\n",
                telemetry::jsonEscape(bench).c_str(),
                telemetry::jsonEscape(kernel).c_str(),
                host_threads, host_seconds, sim_cycles, rate);
}

/**
 * Canonical per-bench perf record, written as BENCH_<name>.json into
 * the --bench-out=/HWGC_BENCH_OUT directory (no-op when unset):
 *
 *     { "bench": ..., "schema": 1, "host_seconds": ...,
 *       "metrics": { "<label>": <int>, ... },
 *       "attribution": { "<phase>": { "<class>": <cycles> } } }
 *
 * Metrics are deterministic integers (simulated cycles, counts) and
 * scripts/bench_compare.py compares them *exactly* against the
 * committed bench/baseline/ record; host_seconds is the machine's
 * wall clock and only ever produces a warning. Attribution carries
 * the profiler's per-phase cycle-class totals, which are equally
 * deterministic — a perf change shows up in review as a readable
 * diff of where the cycles moved.
 */
class BenchRecord
{
  public:
    explicit BenchRecord(std::string name) : name_(std::move(name)) {}

    /** Adds one deterministic integer metric (exact-compared). */
    void
    metric(const std::string &label, std::uint64_t value)
    {
        metrics_.emplace_back(label, value);
    }

    /**
     * Accumulates @p prof's per-phase class totals into the record.
     * Callable once per GcLab/device before it is destroyed; repeated
     * calls sum, so a suite-wide record aggregates all its runs.
     */
    void
    addAttribution(const telemetry::CycleProfiler &prof)
    {
        for (const auto &phase : prof.phases()) {
            auto &classes = phaseSlot(phase);
            for (std::size_t c = 0; c < numCycleClasses; ++c) {
                const auto cc = CycleClass(c);
                const std::uint64_t v = prof.phaseAggregate(phase, cc);
                if (v != 0) {
                    classSlot(classes, cycleClassName(cc)) += v;
                }
            }
        }
    }

    /**
     * Writes BENCH_<name>.json. I/O errors are fatal with filename
     * and errno — a perf-trajectory record silently missing from the
     * output directory would defeat the regression harness.
     */
    void
    write(double host_seconds) const
    {
        const std::string &dir = telemetry::options().benchOut;
        if (dir.empty()) {
            return;
        }
        const std::string path = dir + "/BENCH_" + name_ + ".json";
        std::string text = "{\n  \"bench\": \"" +
                           telemetry::jsonEscape(name_) +
                           "\",\n  \"schema\": 1,\n";
        char buf[64];
        std::snprintf(buf, sizeof buf, "%.6f", host_seconds);
        text += std::string("  \"host_seconds\": ") + buf + ",\n";
        text += "  \"metrics\": {";
        for (std::size_t i = 0; i < metrics_.size(); ++i) {
            text += i ? ",\n    \"" : "\n    \"";
            text += telemetry::jsonEscape(metrics_[i].first) + "\": ";
            std::snprintf(buf, sizeof buf, "%llu",
                          (unsigned long long)metrics_[i].second);
            text += buf;
        }
        text += metrics_.empty() ? "},\n" : "\n  },\n";
        text += "  \"attribution\": {";
        for (std::size_t p = 0; p < attribution_.size(); ++p) {
            text += p ? ",\n    \"" : "\n    \"";
            text += telemetry::jsonEscape(attribution_[p].first) +
                    "\": {";
            const auto &classes = attribution_[p].second;
            for (std::size_t c = 0; c < classes.size(); ++c) {
                text += c ? ", \"" : " \"";
                text += classes[c].first + "\": ";
                std::snprintf(buf, sizeof buf, "%llu",
                              (unsigned long long)classes[c].second);
                text += buf;
            }
            text += " }";
        }
        text += attribution_.empty() ? "}\n}\n" : "\n  }\n}\n";

        std::FILE *f = std::fopen(path.c_str(), "w");
        fatal_if(f == nullptr, "bench: cannot write '%s': %s",
                 path.c_str(), std::strerror(errno));
        const std::size_t written =
            std::fwrite(text.data(), 1, text.size(), f);
        const bool bad = written != text.size() ||
                         std::fflush(f) != 0 || std::ferror(f) != 0;
        const int close_err = std::fclose(f);
        fatal_if(bad || close_err != 0, "bench: error writing '%s': %s",
                 path.c_str(), std::strerror(errno));
        std::printf("bench record: %s\n", path.c_str());
    }

  private:
    using ClassTotals =
        std::vector<std::pair<std::string, std::uint64_t>>;

    ClassTotals &
    phaseSlot(const std::string &phase)
    {
        for (auto &entry : attribution_) {
            if (entry.first == phase) {
                return entry.second;
            }
        }
        attribution_.emplace_back(phase, ClassTotals{});
        return attribution_.back().second;
    }

    static std::uint64_t &
    classSlot(ClassTotals &classes, const std::string &name)
    {
        for (auto &entry : classes) {
            if (entry.first == name) {
                return entry.second;
            }
        }
        classes.emplace_back(name, 0);
        return classes.back().second;
    }

    std::string name_;
    std::vector<std::pair<std::string, std::uint64_t>> metrics_;
    std::vector<std::pair<std::string, ClassTotals>> attribution_;
};

/**
 * Warmup-reuse hook: if --checkpoint-in=/HWGC_CHECKPOINT_IN names a
 * checkpoint, restores it into @p device and returns true — the
 * caller can then skip re-simulating whatever the checkpoint already
 * covers (warmup pauses, a long mark prefix). Pairs with
 * --checkpoint-out=, which makes the device write a checkpoint after
 * every completed pause (or at --checkpoint-at=<cycle>).
 */
template <typename Device>
inline bool
restoreCheckpointIfRequested(Device &device)
{
    const std::string &path = telemetry::options().checkpointIn;
    if (path.empty()) {
        return false;
    }
    device.restoreCheckpoint(path);
    return true;
}

/** Prints one row of a two-column-per-engine table. */
inline void
row(const std::string &label, double a, double b,
    const char *unit = "ms")
{
    std::printf("  %-10s %10.3f %-4s %10.3f %-4s  (ratio %5.2fx)\n",
                label.c_str(), a, unit, b, unit, b != 0.0 ? a / b : 0.0);
}

} // namespace hwgc::bench

#endif // HWGC_BENCH_BENCH_UTIL_H
