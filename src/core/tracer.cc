/**
 * @file
 * Tracer implementation.
 */

#include "tracer.h"

#include "runtime/object_model.h"

namespace hwgc::core
{

using runtime::ObjectModel;

Tracer::Tracer(std::string name, const HwgcConfig &config,
               TraceQueue &trace_queue, MarkQueue &mark_queue,
               mem::MemPort *port, mem::Ptw &ptw)
    : Clocked(std::move(name)), config_(config), traceQueue_(trace_queue),
      markQueue_(mark_queue), port_(port), ptw_(ptw),
      tlb_(this->name() + ".tlb", config.unitTlbEntries)
{
    hasFastForward_ = true; // Accrues throttledCycles over skipped spans.
    panic_if(port_ == nullptr, "tracer needs a memory port");
    ptwPort_ = ptw_.registerRequester(this, this->name());
}

unsigned
Tracer::nextTransferSize(Addr addr, std::uint64_t remaining)
{
    for (unsigned size : {64u, 32u, 16u, 8u}) {
        if (size <= remaining && addr % size == 0) {
            return size;
        }
    }
    panic("tracer cursor %#llx not word aligned",
          (unsigned long long)addr);
}

bool
Tracer::idle() const
{
    return !active_ && traceQueue_.empty() && inFlight_ == 0 &&
        pendingRefs_.empty() && !walkPending_;
}

std::optional<Addr>
Tracer::translate(Addr va, Tick now)
{
    if (walkDone_ && walkVa_ == alignDown(va, pageBytes)) {
        return walkPa_ + (va % pageBytes);
    }
    if (walkPending_) {
        // Blocked on the PTW: don't re-probe the TLB every cycle (the
        // probe updates hit/miss stats and LRU state, which must look
        // the same whether or not the kernel skips blocked cycles).
        return std::nullopt;
    }
    if (const auto pa = tlb_.lookup(va)) {
        return *pa;
    }
    if (ptw_.canRequest(ptwPort_)) {
        walkPending_ = true;
        walkDone_ = false;
        ptw_.requestWalk(ptwPort_, va, now, walkCallback());
    }
    return std::nullopt;
}

mem::Ptw::WalkCallback
Tracer::walkCallback()
{
    return [this](bool valid, Addr wva, Addr wpa, unsigned page_bits) {
        fatal_if(!valid, "tracer touched unmapped VA %#llx",
                 (unsigned long long)wva);
        tlb_.insert(wva, wpa, page_bits);
        walkVa_ = alignDown(wva, pageBytes);
        walkPa_ = alignDown(wpa, pageBytes);
        walkPending_ = false;
        walkDone_ = true;
    };
}

bool
Tracer::mayIssue() const
{
    if (markQueue_.throttle()) {
        return false; // outQ fill signal (paper Fig 12).
    }
    if (pendingRefs_.size() >= config_.tracerPendingRefs) {
        return false; // Response buffer back-pressure.
    }
    if (config_.tracerTagSlots != 0 &&
        inFlight_ >= config_.tracerTagSlots) {
        return false; // Tagged-tracer ablation.
    }
    if (!config_.decoupledTracer && marker_ != nullptr &&
        marker_->inFlight() != 0) {
        return false; // Coupled-pipeline ablation.
    }
    return true;
}

void
Tracer::onResponse(const mem::MemResponse &resp, Tick now)
{
    pokeWakeup();
    (void)now;
    panic_if(inFlight_ == 0, "tracer in-flight underflow");
    --inFlight_;

    switch (resp.req.tag) {
      case kindRefData:
        for (unsigned i = 0; i < resp.req.words(); ++i) {
            const Addr ref = resp.rdata[i];
            if (ref == runtime::nullRef) {
                ++nullsDropped_;
            } else {
                pendingRefs_.push_back(ref);
            }
        }
        break;
      case kindTibPtr:
        panic_if(!active_ || !active_->awaitTibPtr,
                 "unexpected TIB pointer response");
        active_->tibAddr = resp.rdata[0];
        active_->awaitTibPtr = false;
        active_->needTibMeta = true;
        break;
      case kindTibMeta:
        if (active_ && active_->awaitTibMeta) {
            active_->awaitTibMeta = false;
        }
        break;
      default:
        panic("unknown tracer request kind %llu",
              (unsigned long long)resp.req.tag);
    }
}

void
Tracer::drainPendingRefs()
{
    unsigned moved = 0;
    while (moved < 4 && !pendingRefs_.empty() &&
           markQueue_.canEnqueue()) {
        markQueue_.enqueue(pendingRefs_.front());
        pendingRefs_.pop_front();
        ++refsEnqueued_;
        ++moved;
    }
}

void
Tracer::issue(Tick now)
{
    if (!active_ && traceQueue_.empty()) {
        return; // Nothing to trace; idle cycles are not throttle stalls.
    }
    if (!mayIssue()) {
        ++throttled_;
        return;
    }

    // Pop the next object when idle.
    if (!active_) {
        const TraceEntry entry = traceQueue_.pop();
        if (marker_ != nullptr) {
            // The freed trace-queue slot may unblock a marker Finish
            // slot waiting on canPush(); the queue itself is unclocked
            // so the kernel cannot see this hand-off.
            pokeWakeup(*marker_);
        }
        Active a;
        a.ref = entry.ref;
        a.numRefs = entry.numRefs;
        a.cursor = ObjectModel::refsBase(entry.ref, entry.numRefs);
        a.end = entry.ref;
        if (config_.layout == runtime::Layout::Tib) {
            a.needTibPtr = true;
        }
        active_ = a;
        ++objects_;
        DPRINTF(now, "Tracer", "%s: trace object ref=%#llx refs=%u",
                name().c_str(), (unsigned long long)a.ref, a.numRefs);
    }
    Active &a = *active_;

    // Conventional-layout preamble: dependent TIB pointer + metadata.
    if (a.needTibPtr || a.awaitTibPtr) {
        if (a.awaitTibPtr) {
            return; // Dependent load: must wait for the pointer.
        }
        const Addr ptr_va = a.ref + wordBytes;
        const auto pa = translate(ptr_va, now);
        if (!pa) {
            return;
        }
        mem::MemRequest req;
        req.paddr = *pa;
        req.size = wordBytes;
        req.op = mem::Op::Read;
        req.tag = kindTibPtr;
        if (!port_->canSend(req)) {
            return;
        }
        port_->send(req, now);
        ++inFlight_;
        ++requests_;
        ++tibReads_;
        bytesRequested_ += wordBytes;
        a.needTibPtr = false;
        a.awaitTibPtr = true;
        return;
    }
    if (a.needTibMeta || a.awaitTibMeta) {
        if (a.awaitTibMeta) {
            return; // Dependent: offsets unknown until the TIB loads.
        }
        const auto pa = translate(a.tibAddr, now);
        if (!pa) {
            return;
        }
        mem::MemRequest req;
        req.paddr = *pa;
        req.size = wordBytes;
        req.op = mem::Op::Read;
        req.tag = kindTibMeta;
        if (!port_->canSend(req)) {
            return;
        }
        port_->send(req, now);
        ++inFlight_;
        ++requests_;
        ++tibReads_;
        bytesRequested_ += wordBytes;
        a.needTibMeta = false;
        a.awaitTibMeta = true;
        return;
    }

    if (a.cursor >= a.end) {
        active_.reset();
        return;
    }

    const auto pa = translate(a.cursor, now);
    if (!pa) {
        return; // Blocking TLB miss.
    }

    if (config_.layout == runtime::Layout::Tib) {
        // Scattered fields: one slot per request, preceded by an
        // offset-word read from the TIB for every group of eight
        // slots (the offsets tell a real tracer where the fields
        // are, so the group's slot reads depend on it).
        const std::uint32_t group = a.slotsIssued / 8;
        if (a.slotsIssued % 8 == 0 && a.nextOffsetGroup == group) {
            const Addr off_va =
                a.tibAddr + wordBytes + Addr(group) * wordBytes;
            const auto off_pa = translate(off_va, now);
            if (!off_pa) {
                return;
            }
            mem::MemRequest off;
            off.paddr = *off_pa;
            off.size = wordBytes;
            off.op = mem::Op::Read;
            off.tag = kindTibMeta;
            if (!port_->canSend(off)) {
                return;
            }
            port_->send(off, now);
            ++inFlight_;
            ++requests_;
            ++tibReads_;
            bytesRequested_ += wordBytes;
            a.nextOffsetGroup = group + 1;
            return; // One request per cycle.
        }
        mem::MemRequest req;
        req.paddr = *pa;
        req.size = wordBytes;
        req.op = mem::Op::Read;
        req.tag = kindRefData;
        if (!port_->canSend(req)) {
            return;
        }
        port_->send(req, now);
        ++inFlight_;
        ++requests_;
        bytesRequested_ += wordBytes;
        ++a.slotsIssued;
        a.cursor += wordBytes;
        return;
    }

    // Bidirectional layout: largest aligned transfer that tiles the
    // remaining reference section, clipped at the page boundary
    // (aligned power-of-two transfers never straddle a page).
    const std::uint64_t remaining = a.end - a.cursor;
    const unsigned size = nextTransferSize(a.cursor, remaining);
    if (alignDown(a.cursor, pageBytes) !=
        alignDown(a.cursor + size - 1, pageBytes)) {
        panic("aligned transfer crosses a page");
    }
    mem::MemRequest req;
    req.paddr = *pa;
    req.size = size;
    req.op = mem::Op::Read;
    req.tag = kindRefData;
    if (!port_->canSend(req)) {
        return;
    }
    port_->send(req, now);
    ++inFlight_;
    ++requests_;
    bytesRequested_ += size;
    const Addr old_page = alignDown(a.cursor, pageBytes);
    a.cursor += size;
    if (a.cursor < a.end &&
        alignDown(a.cursor, pageBytes) != old_page) {
        ++pageCrossings_; // Next transfer re-translates (paper Fig 14).
    }
    if (a.cursor >= a.end) {
        active_.reset();
    }
}

void
Tracer::tick(Tick now)
{
    drainPendingRefs();
    issue(now);
}

Tick
Tracer::nextWakeup(Tick now) const
{
    if (!pendingRefs_.empty()) {
        return now; // Drain attempt every cycle.
    }
    if (active_ || !traceQueue_.empty()) {
        if (!mayIssue()) {
            // Throttled: every blocking input (mark-queue fill, tag
            // slots, the coupled marker's reads) changes only inside
            // another component's tick or callback, and every
            // executed cycle re-polls all wakeups. throttledCycles
            // accrues in fastForward().
            return maxTick;
        }
        if (walkPending_) {
            return maxTick; // Blocked on the PTW callback.
        }
        if (active_ && (active_->awaitTibPtr || active_->awaitTibMeta)) {
            return maxTick; // Dependent TIB load in flight.
        }
        return now;
    }
    return maxTick; // At most in-flight reads remain (onResponse).
}

CycleClass
Tracer::cycleClass(Tick now) const
{
    if (nextWakeup(now) <= now) {
        return CycleClass::Busy;
    }
    if (active_ || !traceQueue_.empty()) {
        // Throttle inputs in mayIssue() order, so the first blocking
        // condition names the stall.
        if (markQueue_.throttle() ||
            pendingRefs_.size() >= config_.tracerPendingRefs) {
            return CycleClass::StallDownstreamFull;
        }
        if (config_.tracerTagSlots != 0 &&
            inFlight_ >= config_.tracerTagSlots) {
            return CycleClass::StallDram; // Tag slots all in flight.
        }
        if (!config_.decoupledTracer && marker_ != nullptr &&
            marker_->inFlight() != 0) {
            return CycleClass::StallBarrier; // Coupled-pipeline wait.
        }
        if (walkPending_) {
            return CycleClass::StallPtw;
        }
        return CycleClass::StallDram; // Dependent TIB load in flight.
    }
    if (walkPending_) {
        return CycleClass::StallPtw;
    }
    if (inFlight_ != 0) {
        return CycleClass::StallDram; // Reads draining into responses.
    }
    // Drained: starved while the marker still generates trace work.
    return marker_ != nullptr && marker_->busy()
               ? CycleClass::StallUpstreamEmpty
               : CycleClass::Idle;
}

void
Tracer::fastForward(Tick from, Tick to)
{
    // The dense kernel counts one throttle stall per cycle the tracer
    // has work but mayIssue() is false. That state is frozen across
    // skipped cycles (only ticks mutate it; pendingRefs_ is empty or
    // we would have been due), so the span accrues in one step.
    if ((active_ || !traceQueue_.empty()) && !mayIssue()) {
        throttled_ += to - from;
    }
}

void
Tracer::save(checkpoint::Serializer &ser) const
{
    ser.putBool(active_.has_value());
    if (active_) {
        const Active &a = *active_;
        ser.putU64(a.ref);
        ser.putU64(a.cursor);
        ser.putU64(a.end);
        ser.putU64(a.numRefs);
        ser.putU64(a.slotsIssued);
        ser.putU64(a.nextOffsetGroup);
        ser.putBool(a.needTibPtr);
        ser.putBool(a.awaitTibPtr);
        ser.putBool(a.needTibMeta);
        ser.putBool(a.awaitTibMeta);
        ser.putU64(a.tibAddr);
    }
    ser.putU64(inFlight_);
    ser.putU64(pendingRefs_.size());
    for (const Addr ref : pendingRefs_) {
        ser.putU64(ref);
    }
    ser.putBool(walkPending_);
    ser.putBool(walkDone_);
    ser.putU64(walkPa_);
    ser.putU64(walkVa_);
    checkpoint::putStat(ser, requests_);
    checkpoint::putStat(ser, bytesRequested_);
    checkpoint::putStat(ser, refsEnqueued_);
    checkpoint::putStat(ser, nullsDropped_);
    checkpoint::putStat(ser, objects_);
    checkpoint::putStat(ser, pageCrossings_);
    checkpoint::putStat(ser, throttled_);
    checkpoint::putStat(ser, tibReads_);
    tlb_.save(ser);
}

void
Tracer::restore(checkpoint::Deserializer &des)
{
    active_.reset();
    if (des.getBool()) {
        Active a;
        a.ref = des.getU64();
        a.cursor = des.getU64();
        a.end = des.getU64();
        a.numRefs = std::uint32_t(des.getU64());
        a.slotsIssued = std::uint32_t(des.getU64());
        a.nextOffsetGroup = std::uint32_t(des.getU64());
        a.needTibPtr = des.getBool();
        a.awaitTibPtr = des.getBool();
        a.needTibMeta = des.getBool();
        a.awaitTibMeta = des.getBool();
        a.tibAddr = des.getU64();
        active_ = a;
    }
    inFlight_ = unsigned(des.getU64());
    pendingRefs_.clear();
    const std::uint64_t num_pending = des.getU64();
    for (std::uint64_t i = 0; i < num_pending; ++i) {
        pendingRefs_.push_back(des.getU64());
    }
    walkPending_ = des.getBool();
    walkDone_ = des.getBool();
    walkPa_ = des.getU64();
    walkVa_ = des.getU64();
    checkpoint::getStat(des, requests_);
    checkpoint::getStat(des, bytesRequested_);
    checkpoint::getStat(des, refsEnqueued_);
    checkpoint::getStat(des, nullsDropped_);
    checkpoint::getStat(des, objects_);
    checkpoint::getStat(des, pageCrossings_);
    checkpoint::getStat(des, throttled_);
    checkpoint::getStat(des, tibReads_);
    tlb_.restore(des);
}

void
Tracer::reset()
{
    panic_if(!idle(), "tracer reset while active");
    tlb_.flush();
    walkDone_ = false;
}

void
Tracer::resetStats()
{
    requests_.reset();
    bytesRequested_.reset();
    refsEnqueued_.reset();
    nullsDropped_.reset();
    objects_.reset();
    pageCrossings_.reset();
    throttled_.reset();
    tibReads_.reset();
    tlb_.resetStats();
}

} // namespace hwgc::core
