#!/usr/bin/env python3
"""Compare two directories of BENCH_<name>.json perf records.

Usage: bench_compare.py BASELINE_DIR NEW_DIR

Each record (written by the bench binaries under --bench-out=, schema
in bench/bench_util.h) carries deterministic integer metrics
(simulated cycles, counts) plus the profiler's per-phase cycle-class
attribution, and an advisory host wall-clock.

The compare is exhaustive, not fail-fast: every malformed record,
every missing/extra record and every differing, missing or extra
metric/attribution key across the whole tree is collected and printed
as one diff, so a single run shows the complete blast radius of a
change. Exit status is nonzero if anything deterministic differs or
the baseline directory is empty/missing. Host wall-clock changes and
records present only in NEW_DIR produce warnings, never failures —
wall clock depends on the machine, and a brand-new bench has no
baseline yet.
"""

import argparse
import json
import sys
from pathlib import Path

# Relative host-seconds drift above which a warning is printed.
HOST_WARN_RATIO = 0.25


def load_records(directory, errors):
    """Loads every record, appending per-file problems to errors
    instead of dying on the first one."""
    records = {}
    for path in sorted(Path(directory).glob("BENCH_*.json")):
        try:
            with open(path) as f:
                data = json.load(f)
        except (OSError, ValueError) as exc:
            errors.append(f"{path}: unreadable record: {exc}")
            continue
        if data.get("schema") != 1:
            errors.append(f"{path}: unsupported schema "
                          f"{data.get('schema')!r}")
            continue
        if "bench" not in data:
            errors.append(f"{path}: record has no 'bench' name")
            continue
        records[data["bench"]] = data
    return records


def flatten_attribution(record):
    """{phase: {class: cycles}} -> {(phase, class): cycles}."""
    flat = {}
    for phase, classes in record.get("attribution", {}).items():
        for cls, cycles in classes.items():
            flat[(phase, cls)] = cycles
    return flat


def diff_keyed(name, kind, base, new, failures):
    """Reports every missing, extra and differing key of one mapping,
    naming which side each key is absent from."""
    for key in sorted(set(base) | set(new)):
        label = key if isinstance(key, str) else "/".join(key)
        if key not in new:
            failures.append(f"{name}: {kind} '{label}' missing from new "
                            f"run (baseline has {base[key]})")
        elif key not in base:
            failures.append(f"{name}: {kind} '{label}' only in new run "
                            f"(value {new[key]}, no baseline)")
        elif base[key] != new[key]:
            failures.append(f"{name}: {kind} '{label}': baseline "
                            f"{base[key]} != new {new[key]}")


def compare_record(name, base, new):
    failures = []
    diff_keyed(name, "metric", base.get("metrics", {}),
               new.get("metrics", {}), failures)
    diff_keyed(name, "attribution", flatten_attribution(base),
               flatten_attribution(new), failures)

    old_host = base.get("host_seconds", 0.0)
    new_host = new.get("host_seconds", 0.0)
    if old_host > 0 and new_host > 0:
        ratio = new_host / old_host
        if abs(ratio - 1.0) > HOST_WARN_RATIO:
            print(f"warning: {name}: host wall-clock {old_host:.2f}s -> "
                  f"{new_host:.2f}s ({ratio:.2f}x); advisory only")
    return failures


def main():
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0],
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("baseline", help="committed bench/baseline dir")
    parser.add_argument("new", help="freshly produced --bench-out dir")
    args = parser.parse_args()

    if not Path(args.baseline).is_dir():
        sys.exit(f"error: baseline directory '{args.baseline}' does not "
                 "exist")

    failures = []
    baseline = load_records(args.baseline, failures)
    new = load_records(args.new, failures)
    if not baseline:
        print(f"error: no valid BENCH_*.json records in {args.baseline}")
        for failure in failures:
            print(f"  FAIL {failure}")
        return 1

    missing = sorted(set(baseline) - set(new))
    extra = sorted(set(new) - set(baseline))
    if missing or extra:
        print(f"record diff: {len(baseline)} baseline, {len(new)} new, "
              f"{len(missing)} missing, {len(extra)} extra")
    for name in missing:
        failures.append(f"{name}: record missing from {args.new} "
                        "(bench not run or failed to write)")
    for name in extra:
        print(f"warning: {name}: new record has no baseline; commit "
              f"{args.new}/BENCH_{name}.json to bench/baseline/")

    for name in sorted(set(baseline) & set(new)):
        failures.extend(compare_record(name, baseline[name], new[name]))

    if failures:
        print(f"\n{len(failures)} deterministic difference(s):")
        for failure in failures:
            print(f"  FAIL {failure}")
        print("\nIf the change is intended, refresh the baselines: "
              "run each bench with --bench-out=bench/baseline and "
              "commit the result.")
        return 1
    print(f"bench_compare: {len(baseline)} record(s) match baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
