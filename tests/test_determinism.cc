/**
 * @file
 * Determinism tests: the simulator must be bit-reproducible — same
 * seeds, same cycle counts, same statistics — across runs and across
 * configurations that should not affect results. This is what makes
 * every number in EXPERIMENTS.md reproducible.
 *
 * The KernelMatrix suite is the strongest form of that contract: the
 * {dense, event, parallel×{1,2,4,7 threads}×{affinity, fine, cost
 * partitions}×{superstep batching on/off/capped}} kernel matrix must
 * agree bit for bit on every modeled configuration — final cycle
 * counts, the full stats-JSON export, and the mark/sweep oracles.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <cstring>
#include <sstream>
#include <string>
#include <utility>

#include "driver/fleet.h"
#include "driver/gc_lab.h"
#include "sim/telemetry.h"

namespace hwgc
{
namespace
{

struct RunSignature
{
    Tick hwMark = 0;
    Tick hwSweep = 0;
    std::uint64_t marked = 0;
    std::uint64_t freed = 0;
    std::uint64_t tracerRequests = 0;
    std::uint64_t spilled = 0;
    std::uint64_t dramBytes = 0;

    bool
    operator==(const RunSignature &o) const
    {
        return hwMark == o.hwMark && hwSweep == o.hwSweep &&
            marked == o.marked && freed == o.freed &&
            tracerRequests == o.tracerRequests &&
            spilled == o.spilled && dramBytes == o.dramBytes;
    }
};

RunSignature
signatureFor(const core::HwgcConfig &config, std::uint64_t seed)
{
    auto profile = workload::smokeProfile();
    profile.graph.seed = seed;
    driver::LabConfig lab_config;
    lab_config.runSw = false;
    lab_config.hwgc = config;
    driver::GcLab lab(profile, lab_config);
    lab.run();
    const auto &last = lab.results().back();
    RunSignature sig;
    sig.hwMark = last.hwMarkCycles;
    sig.hwSweep = last.hwSweepCycles;
    sig.marked = last.objectsMarked;
    sig.freed = last.cellsFreed;
    sig.tracerRequests = last.hw.tracerRequests;
    sig.spilled = last.hw.entriesSpilled;
    sig.dramBytes = last.hw.dramBytes;
    return sig;
}

TEST(Determinism, IdenticalRunsAreCycleIdentical)
{
    const auto a = signatureFor(core::HwgcConfig{}, 7);
    const auto b = signatureFor(core::HwgcConfig{}, 7);
    EXPECT_TRUE(a == b);
}

TEST(Determinism, SeedsChangeTheRun)
{
    const auto a = signatureFor(core::HwgcConfig{}, 7);
    const auto b = signatureFor(core::HwgcConfig{}, 8);
    EXPECT_FALSE(a == b);
}

TEST(Determinism, IdealMemoryRunsAreReproducible)
{
    core::HwgcConfig config;
    config.memModel = core::MemModel::Ideal;
    const auto a = signatureFor(config, 9);
    const auto b = signatureFor(config, 9);
    EXPECT_TRUE(a == b);
}

TEST(Determinism, SharedCacheRunsAreReproducible)
{
    core::HwgcConfig config;
    config.sharedCache = true;
    const auto a = signatureFor(config, 10);
    const auto b = signatureFor(config, 10);
    EXPECT_TRUE(a == b);
}

// ---------------------------------------------------------------------
// Kernel matrix: every kernel mode and thread count must produce the
// same simulation, bit for bit.
// ---------------------------------------------------------------------

/**
 * StatsRegistry::uniquePrefix never reuses an instance number within a
 * process, so consecutive runs register as system.hwgc0, system.hwgc1,
 * ... Strip the instance digits so exports from different runs become
 * directly comparable strings.
 */
std::string
normalizeInstanceIds(std::string s)
{
    for (const char *key :
         {"system.hwgc", "system.cpu", "system.fleet"}) {
        const std::size_t klen = std::strlen(key);
        std::size_t pos = 0;
        while ((pos = s.find(key, pos)) != std::string::npos) {
            std::size_t digits = pos + klen;
            std::size_t end = digits;
            while (end < s.size() &&
                   std::isdigit(static_cast<unsigned char>(s[end]))) {
                ++end;
            }
            s.replace(digits, end - digits, "#");
            pos = digits + 1;
        }
    }
    return s;
}

/** One full lab run folded down to everything that must match. */
struct MatrixResult
{
    Tick hwMark = 0;  //!< Mark cycles summed over all pauses.
    Tick hwSweep = 0; //!< Sweep cycles summed over all pauses.
    std::uint64_t marked = 0;
    std::uint64_t freed = 0;
    std::string statsJson; //!< Normalized full registry export.
};

MatrixResult
matrixRun(core::HwgcConfig config, KernelMode kernel, unsigned threads,
          const char *partition = "", unsigned superstep_max = 0)
{
    config.kernel = kernel;
    config.hostThreads = threads;
    config.hostPartition = partition;
    config.superstepMax = superstep_max;
    driver::LabConfig lab_config;
    lab_config.runSw = false;
    lab_config.verify = true; // Oracle-checks marks and the swept heap.
    lab_config.hwgc = config;
    lab_config.heap.layout = config.layout;

    // Retired groups from earlier runs in this process would otherwise
    // accumulate into the export and differ between runs.
    telemetry::StatsRegistry::global().clearRetired();

    driver::GcLab lab(workload::smokeProfile(), lab_config);
    lab.run();

    MatrixResult r;
    for (const auto &pause : lab.results()) {
        r.hwMark += pause.hwMarkCycles;
        r.hwSweep += pause.hwSweepCycles;
        r.marked += pause.objectsMarked;
        r.freed += pause.cellsFreed;
    }
    std::ostringstream os;
    telemetry::StatsRegistry::global().exportJson(os, {});
    r.statsJson = normalizeInstanceIds(os.str());
    return r;
}

/** On mismatch, EXPECT_EQ on two full exports is unreadable; point at
 *  the first divergence instead. */
void
expectSameStatsJson(const std::string &ref, const std::string &run)
{
    if (ref == run) {
        return;
    }
    std::size_t i = 0;
    while (i < ref.size() && i < run.size() && ref[i] == run[i]) {
        ++i;
    }
    const std::size_t begin = i > 120 ? i - 120 : 0;
    ADD_FAILURE() << "stats JSON diverged at byte " << i << "\n  ref: ..."
                  << ref.substr(begin, 200) << "\n  run: ..."
                  << run.substr(begin, 200);
}

void
expectKernelMatrixAgrees(const core::HwgcConfig &config)
{
    const auto ref = matrixRun(config, KernelMode::Dense, 0);
    struct Case
    {
        const char *name;
        KernelMode kernel;
        unsigned threads;
        const char *partition;
        unsigned superstepMax;
    };
    // Odd and oversubscribed thread counts are deliberate: the
    // partition→worker mapping and the worker clamp must not be able
    // to affect results. Partition schemes and superstep caps are
    // host-only knobs and must be equally invisible: "fine" maximizes
    // cross-partition staging, "cost" adds the mid-run worker
    // re-pack, superstepMax 1 disables batching while 0 leaves it
    // bounded only by the no-cross-edge proof.
    static constexpr Case cases[] = {
        {"event", KernelMode::Event, 0, "", 0},
        {"parallel-1", KernelMode::ParallelBsp, 1, "", 0},
        {"parallel-2", KernelMode::ParallelBsp, 2, "", 0},
        {"parallel-4", KernelMode::ParallelBsp, 4, "", 0},
        {"parallel-7", KernelMode::ParallelBsp, 7, "", 0},
        {"parallel-4-fine", KernelMode::ParallelBsp, 4, "fine", 0},
        {"parallel-4-cost", KernelMode::ParallelBsp, 4, "cost", 0},
        {"parallel-7-cost", KernelMode::ParallelBsp, 7, "cost", 0},
        {"parallel-2-fine-nobatch", KernelMode::ParallelBsp, 2, "fine",
         1},
        {"parallel-3-cost-batch16", KernelMode::ParallelBsp, 3, "cost",
         16},
    };
    for (const auto &c : cases) {
        SCOPED_TRACE(c.name);
        const auto run = matrixRun(config, c.kernel, c.threads,
                                   c.partition, c.superstepMax);
        EXPECT_EQ(ref.hwMark, run.hwMark);
        EXPECT_EQ(ref.hwSweep, run.hwSweep);
        EXPECT_EQ(ref.marked, run.marked);
        EXPECT_EQ(ref.freed, run.freed);
        expectSameStatsJson(ref.statsJson, run.statsJson);
    }
}

TEST(KernelMatrix, BaselineDdr3)
{
    expectKernelMatrixAgrees(core::HwgcConfig{});
}

TEST(KernelMatrix, SharedCache)
{
    core::HwgcConfig config;
    config.sharedCache = true;
    expectKernelMatrixAgrees(config);
}

TEST(KernelMatrix, IdealMemory)
{
    core::HwgcConfig config;
    config.memModel = core::MemModel::Ideal;
    expectKernelMatrixAgrees(config);
}

TEST(KernelMatrix, SpillPressure)
{
    core::HwgcConfig config;
    config.markQueueEntries = 32; // Force the spill path.
    expectKernelMatrixAgrees(config);
}

TEST(KernelMatrix, BandwidthThrottle)
{
    core::HwgcConfig config;
    config.bus.throttleBytesPerCycle = 1.0;
    expectKernelMatrixAgrees(config);
}

TEST(KernelMatrix, TibLayout)
{
    core::HwgcConfig config;
    config.layout = runtime::Layout::Tib;
    expectKernelMatrixAgrees(config);
}

/**
 * The bit-identity cases above would pass vacuously if the superstep
 * batcher never engaged; this pins down that batches with K > 1
 * actually happen (the kernel's deterministic host counters say so)
 * and that superstepMax=1 really turns them off.
 */
TEST(KernelMatrix, SuperstepBatchingFires)
{
    const auto countersFor = [](unsigned superstep_max) {
        core::HwgcConfig config;
        config.kernel = KernelMode::ParallelBsp;
        config.hostThreads = 2;
        config.superstepMax = superstep_max;
        driver::LabConfig lab_config;
        lab_config.runSw = false;
        lab_config.hwgc = config;
        driver::GcLab lab(workload::smokeProfile(), lab_config);
        lab.run();
        System &sys = lab.device().system();
        return std::pair<std::uint64_t, std::uint64_t>(
            sys.bspSupersteps(), sys.bspBatchedCycles());
    };

    const auto batched = countersFor(0);
    EXPECT_GT(batched.second, 0u)
        << "the no-cross-edge proof never batched a single cycle";

    const auto unbatched = countersFor(1);
    EXPECT_EQ(unbatched.second, 0u);
    // Every batched cycle is a fan-out/join round the capped run must
    // pay for individually.
    EXPECT_GT(unbatched.first, batched.first);
}

// ---------------------------------------------------------------------
// Fleet shape: two devices sharing one DRAM + interconnect, serving
// multiple tenant heaps through the quantum-gridded service loop.
// tests/test_fleet.cc owns the full fleet matrix; this case keeps a
// compact shared-DRAM fleet inside the tier-1 determinism suite.
// ---------------------------------------------------------------------

/** A whole fleet run folded down to everything that must match. */
struct FleetMatrixResult
{
    Tick finalCycle = 0;
    std::uint64_t totalGcs = 0;
    std::vector<std::uint64_t> perTenant; //!< gcs/stw/queue triples.
    std::string statsJson;
};

FleetMatrixResult
fleetMatrixRun(KernelMode kernel, unsigned threads)
{
    driver::FleetConfig config;
    config.devices = 2;
    config.gcsPerTenant = 1;
    config.hwgc.kernel = kernel;
    config.hwgc.hostThreads = threads;

    std::vector<driver::TenantParams> tenants(3);
    for (unsigned t = 0; t < tenants.size(); ++t) {
        auto &tenant = tenants[t];
        tenant.name = "t" + std::to_string(t);
        tenant.graph = workload::smokeProfile().graph;
        tenant.graph.seed = 500 + t;
        tenant.gcPeriodCycles = 150'000;
        tenant.seed = 20 + t;
    }

    telemetry::StatsRegistry::global().clearRetired();
    FleetMatrixResult r;
    {
        driver::FleetLab lab(config, tenants);
        lab.run();
        r.finalCycle = lab.now();
        r.totalGcs = lab.totalGcs();
        for (const auto &stats : lab.stats()) {
            r.perTenant.push_back(stats.gcs);
            r.perTenant.push_back(stats.stwCycles);
            r.perTenant.push_back(stats.queueCycles);
        }
        std::ostringstream os;
        telemetry::StatsRegistry::global().exportJson(os, {});
        r.statsJson = normalizeInstanceIds(os.str());
    } // Scoped: a live lab would leak its groups into later exports.
    return r;
}

TEST(KernelMatrix, FleetTwoDevicesSharedDram)
{
    const auto ref = fleetMatrixRun(KernelMode::Dense, 0);
    EXPECT_EQ(ref.totalGcs, 3u);
    struct Case
    {
        const char *name;
        KernelMode kernel;
        unsigned threads;
    };
    static constexpr Case cases[] = {
        {"event", KernelMode::Event, 0},
        {"parallel-2", KernelMode::ParallelBsp, 2},
        {"parallel-7", KernelMode::ParallelBsp, 7},
    };
    for (const auto &c : cases) {
        SCOPED_TRACE(c.name);
        const auto run = fleetMatrixRun(c.kernel, c.threads);
        EXPECT_EQ(ref.finalCycle, run.finalCycle);
        EXPECT_EQ(ref.totalGcs, run.totalGcs);
        EXPECT_EQ(ref.perTenant, run.perTenant);
        expectSameStatsJson(ref.statsJson, run.statsJson);
    }
}

// ---------------------------------------------------------------------
// Mark-queue overflow stress: a tiny queue against a wide graph keeps
// the spill/refill path saturated; its counters must still be
// identical across kernels (the full-export comparison covers them,
// but the explicit asserts document which stats are the point here).
// ---------------------------------------------------------------------

TEST(KernelMatrix, SpillStressTinyQueueWideGraph)
{
    core::HwgcConfig config;
    config.markQueueEntries = 16;
    config.spillQueueEntries = 16;
    config.spillThrottle = 8;

    auto profile = workload::smokeProfile();
    profile.graph.numRoots = 128;
    profile.graph.avgRefs = 8.0;
    profile.graph.maxRefs = 24;
    profile.numGCs = 1;

    auto run = [&](KernelMode kernel, unsigned threads) {
        auto cfg = config;
        cfg.kernel = kernel;
        cfg.hostThreads = threads;
        driver::LabConfig lab_config;
        lab_config.runSw = false;
        lab_config.verify = true;
        lab_config.hwgc = cfg;
        driver::GcLab lab(profile, lab_config);
        lab.run();
        const auto &hw = lab.results().back().hw;
        struct Spill
        {
            std::uint64_t writes, reads, entries;
            Tick markCycles;
        };
        return Spill{hw.spillWrites, hw.spillReads, hw.entriesSpilled,
                     lab.results().back().hwMarkCycles};
    };

    const auto dense = run(KernelMode::Dense, 0);
    ASSERT_GT(dense.entries, 0u) << "stress config did not spill";
    ASSERT_GT(dense.writes, 0u);

    for (unsigned threads : {0u, 1u, 2u, 4u, 7u}) {
        const KernelMode kernel =
            threads == 0 ? KernelMode::Event : KernelMode::ParallelBsp;
        SCOPED_TRACE(threads == 0 ? "event"
                                  : "parallel-" + std::to_string(threads));
        const auto other = run(kernel, threads);
        EXPECT_EQ(dense.writes, other.writes);
        EXPECT_EQ(dense.reads, other.reads);
        EXPECT_EQ(dense.entries, other.entries);
        EXPECT_EQ(dense.markCycles, other.markCycles);
    }
}

TEST(Determinism, SwSideIsReproducibleToo)
{
    auto run = [] {
        driver::LabConfig config;
        config.runHw = false;
        driver::GcLab lab(workload::smokeProfile(), config);
        lab.run();
        return std::pair{lab.results().back().swMarkCycles,
                         lab.results().back().swSweepCycles};
    };
    EXPECT_EQ(run(), run());
}

} // namespace
} // namespace hwgc
