/**
 * @file
 * Root reader implementation.
 */

#include "root_reader.h"

#include "core/tracer.h"

namespace hwgc::core
{

RootReader::RootReader(std::string name, const HwgcConfig &config,
                       MarkQueue &mark_queue, mem::MemPort *port,
                       mem::Ptw &ptw)
    : Clocked(std::move(name)), config_(config), markQueue_(mark_queue),
      port_(port), ptw_(ptw), tlb_(this->name() + ".tlb", 4)
{
    panic_if(port_ == nullptr, "root reader needs a memory port");
    ptwPort_ = ptw_.registerRequester(this, this->name());
}

void
RootReader::start(Addr base_va, std::uint64_t count)
{
    pokeWakeup(); // External MMIO-style kick.
    panic_if(!done(), "root reader restarted while active");
    panic_if(base_va % lineBytes != 0,
             "hwgc-space must be line aligned");
    base_ = base_va;
    cursor_ = base_va;
    end_ = base_va + count * wordBytes;
    doneAt_ = 0;
    DPRINTF(0, "RootReader", "%s: armed base=%#llx roots=%llu",
            name().c_str(), (unsigned long long)base_va,
            (unsigned long long)count);
}

void
RootReader::extend(std::uint64_t count)
{
    pokeWakeup(); // May reopen a finished cursor.
    panic_if(base_ == 0 && end_ == 0, "extend before start");
    const Addr new_end = base_ + count * wordBytes;
    panic_if(new_end < end_, "root region cannot shrink");
    end_ = new_end;
}

bool
RootReader::done() const
{
    return cursor_ >= end_ && inFlight_ == 0 && pending_.empty();
}

void
RootReader::onResponse(const mem::MemResponse &resp, Tick now)
{
    pokeWakeup();
    (void)now;
    panic_if(inFlight_ == 0, "root reader in-flight underflow");
    --inFlight_;
    for (unsigned i = 0; i < resp.req.words(); ++i) {
        if (resp.rdata[i] != 0) {
            pending_.push_back(resp.rdata[i]);
        }
    }
    noteDone(now);
}

void
RootReader::tick(Tick now)
{
    // Feed buffered roots into the mark queue.
    unsigned moved = 0;
    while (moved < 4 && !pending_.empty() && markQueue_.canEnqueue()) {
        markQueue_.enqueue(pending_.front());
        pending_.pop_front();
        ++rootsRead_;
        ++moved;
    }
    noteDone(now);

    if (cursor_ >= end_ || pending_.size() >= 64) {
        return;
    }
    if (walkPending_) {
        return; // Blocked on the PTW; don't re-probe the TLB.
    }

    // Translate the current page (blocking, via the shared PTW).
    std::optional<Addr> pa = tlb_.lookup(cursor_);
    if (!pa) {
        if (ptw_.canRequest(ptwPort_)) {
            walkPending_ = true;
            ptw_.requestWalk(ptwPort_, cursor_, now, walkCallback());
        }
        return;
    }

    const unsigned size =
        Tracer::nextTransferSize(cursor_, end_ - cursor_);
    mem::MemRequest req;
    req.paddr = *pa;
    req.size = size;
    req.op = mem::Op::Read;
    if (!port_->canSend(req)) {
        return;
    }
    port_->send(req, now);
    ++inFlight_;
    cursor_ += size;
}

Tick
RootReader::nextWakeup(Tick now) const
{
    if (!pending_.empty()) {
        return now; // Feed attempt every cycle.
    }
    if (cursor_ < end_) {
        // pending_ is empty here, so the 64-entry gate is open.
        return walkPending_ ? maxTick : now;
    }
    return maxTick; // Only in-flight reads remain (onResponse).
}

CycleClass
RootReader::cycleClass(Tick now) const
{
    (void)now;
    if (done()) {
        return CycleClass::Idle;
    }
    if (!pending_.empty() && markQueue_.canEnqueue()) {
        return CycleClass::Busy; // Feeding roots into the queue.
    }
    if (cursor_ < end_ && pending_.size() < 64) {
        if (walkPending_) {
            return CycleClass::StallPtw;
        }
        // Issuing (or launching a walk); the TLB itself is not
        // probed here — lookup() updates LRU/stat state and the
        // classifier must stay purely observational.
        mem::MemRequest probe;
        probe.size = wordBytes;
        return port_->canSend(probe) ? CycleClass::Busy
                                     : CycleClass::StallBus;
    }
    if (!pending_.empty()) {
        return CycleClass::StallDownstreamFull; // Mark queue full.
    }
    if (walkPending_) {
        return CycleClass::StallPtw;
    }
    return CycleClass::StallDram; // Root-line reads in flight.
}

mem::Ptw::WalkCallback
RootReader::walkCallback()
{
    return [this](bool valid, Addr va, Addr wpa, unsigned page_bits) {
        fatal_if(!valid, "hwgc-space unmapped at %#llx",
                 (unsigned long long)va);
        tlb_.insert(va, wpa, page_bits);
        walkPending_ = false;
    };
}

void
RootReader::save(checkpoint::Serializer &ser) const
{
    ser.putU64(base_);
    ser.putU64(cursor_);
    ser.putU64(end_);
    ser.putU64(inFlight_);
    ser.putU64(pending_.size());
    for (const Addr ref : pending_) {
        ser.putU64(ref);
    }
    ser.putBool(walkPending_);
    ser.putU64(doneAt_);
    checkpoint::putStat(ser, rootsRead_);
    tlb_.save(ser);
}

void
RootReader::restore(checkpoint::Deserializer &des)
{
    base_ = des.getU64();
    cursor_ = des.getU64();
    end_ = des.getU64();
    inFlight_ = unsigned(des.getU64());
    pending_.clear();
    const std::uint64_t num_pending = des.getU64();
    for (std::uint64_t i = 0; i < num_pending; ++i) {
        pending_.push_back(des.getU64());
    }
    walkPending_ = des.getBool();
    doneAt_ = des.getU64();
    checkpoint::getStat(des, rootsRead_);
    tlb_.restore(des);
}

void
RootReader::reset()
{
    panic_if(!done(), "root reader reset while active");
    tlb_.flush();
    base_ = cursor_ = end_ = 0;
    doneAt_ = 0;
}

} // namespace hwgc::core
