/**
 * @file
 * Differential fuzzing harness tests (DESIGN.md §11):
 *
 *  1. Schedules are pure functions of the seed and round-trip through
 *     the text format byte-identically; malformed files are rejected
 *     with line-numbered errors.
 *  2. Config specs apply exactly the named knobs and reject unknown
 *     keys/values with a message naming the offender.
 *  3. The differential matrix runs green on healthy schedules of
 *     every shape family.
 *  4. An intentionally injected mark-bit bug is *caught*: the run
 *     fails with a mark-set divergence, writes the schedule + a
 *     pid-suffixed crash checkpoint, and composes a repro line that
 *     does reproduce the failure. (The acceptance criterion for the
 *     whole harness: a real bug cannot slip through silently.)
 *  5. Shrinking produces a smaller schedule that still fails.
 *  6. Farm snapshots reconstruct a warm heap bit-identically: the
 *     forked universe's next pause and next mutation match the
 *     original's exactly.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>

#include "core/hwgc_device.h"
#include "fuzz/differ.h"
#include "fuzz/farm.h"
#include "fuzz/shrink.h"
#include "gc/verifier.h"
#include "sim/checkpoint.h"

namespace hwgc
{
namespace
{

std::string
tmpPath(const std::string &name)
{
    return ::testing::TempDir() + name;
}

bool
fileExists(const std::string &path)
{
    std::ifstream f(path);
    return f.good();
}

/** A small schedule that keeps matrix replays fast. */
fuzz::Schedule
smallSchedule(std::uint64_t seed = 7)
{
    fuzz::Schedule s;
    s.seed = seed;
    s.shape = fuzz::Shape::Random;
    s.liveObjects = 150;
    s.garbageObjects = 80;
    s.ops = {{fuzz::Op::Kind::Collect, 0},
             {fuzz::Op::Kind::Mutate, 250},
             {fuzz::Op::Kind::Collect, 0}};
    return s;
}

// ---------------------------------------------------------------------
// (1) Schedule generation and the text format.
// ---------------------------------------------------------------------

TEST(FuzzSchedule, GenerateIsDeterministic)
{
    for (std::uint64_t seed = 0; seed < 64; ++seed) {
        const fuzz::Schedule a = fuzz::generate(seed);
        const fuzz::Schedule b = fuzz::generate(seed);
        EXPECT_EQ(fuzz::toText(a), fuzz::toText(b)) << "seed " << seed;
        EXPECT_GE(a.collects(), 1u) << "seed " << seed;
        EXPECT_EQ(a.seed, seed);
    }
}

TEST(FuzzSchedule, SeedsCoverEveryShapeFamily)
{
    bool seen[4] = {};
    for (std::uint64_t seed = 0; seed < 64; ++seed) {
        seen[unsigned(fuzz::generate(seed).shape)] = true;
    }
    EXPECT_TRUE(seen[unsigned(fuzz::Shape::Random)]);
    EXPECT_TRUE(seen[unsigned(fuzz::Shape::Chain)]);
    EXPECT_TRUE(seen[unsigned(fuzz::Shape::SpillStorm)]);
    EXPECT_TRUE(seen[unsigned(fuzz::Shape::Sparse)]);
}

TEST(FuzzSchedule, TextRoundTripsEveryShape)
{
    for (const fuzz::Shape shape :
         {fuzz::Shape::Random, fuzz::Shape::Chain, fuzz::Shape::SpillStorm,
          fuzz::Shape::Sparse}) {
        fuzz::Schedule s = smallSchedule(11);
        s.shape = shape;
        const std::string text = fuzz::toText(s);
        fuzz::Schedule parsed;
        std::string err;
        ASSERT_TRUE(fuzz::fromText(text, parsed, &err)) << err;
        EXPECT_EQ(text, fuzz::toText(parsed));
        EXPECT_EQ(s.shape, parsed.shape);
        EXPECT_EQ(s.liveObjects, parsed.liveObjects);
        EXPECT_EQ(s.ops.size(), parsed.ops.size());
    }
}

TEST(FuzzSchedule, AdversarialShapesReachTheirParams)
{
    fuzz::Schedule chain = smallSchedule();
    chain.shape = fuzz::Shape::Chain;
    const auto chain_params = fuzz::graphParams(chain);
    EXPECT_EQ(chain_params.numRoots, 1u);
    EXPECT_EQ(chain_params.maxRefs, 1u);
    EXPECT_EQ(chain_params.arrayFraction, 0.0);

    fuzz::Schedule storm = smallSchedule();
    storm.shape = fuzz::Shape::SpillStorm;
    EXPECT_GT(fuzz::graphParams(storm).arrayFraction, 0.4);

    fuzz::Schedule sparse = smallSchedule();
    sparse.shape = fuzz::Shape::Sparse;
    EXPECT_GE(fuzz::graphParams(sparse).sparsePadObjects, 3u);
}

TEST(FuzzSchedule, RejectsMalformedText)
{
    fuzz::Schedule out;
    std::string err;
    EXPECT_FALSE(fuzz::fromText("", out, &err));
    EXPECT_FALSE(fuzz::fromText("version 9\nseed 1\ncollect\n", out, &err));
    EXPECT_NE(err.find("version"), std::string::npos) << err;
    // A schedule without any collect cannot test anything.
    EXPECT_FALSE(fuzz::fromText("version 1\nseed 1\nmutate 100\n", out,
                                &err));
    EXPECT_FALSE(
        fuzz::fromText("version 1\nseed 1\nfrobnicate\ncollect\n", out,
                       &err));
    EXPECT_NE(err.find("line 3"), std::string::npos) << err;
}

TEST(FuzzSchedule, FileRoundTrip)
{
    const std::string path = tmpPath("roundtrip.sched");
    const fuzz::Schedule s = fuzz::generate(5);
    ASSERT_TRUE(fuzz::saveFile(path, s));
    fuzz::Schedule loaded;
    std::string err;
    ASSERT_TRUE(fuzz::loadFile(path, loaded, &err)) << err;
    EXPECT_EQ(fuzz::toText(s), fuzz::toText(loaded));
    EXPECT_FALSE(fuzz::loadFile(tmpPath("nonexistent.sched"), loaded,
                                &err));
}

// ---------------------------------------------------------------------
// (2) Config specs.
// ---------------------------------------------------------------------

TEST(FuzzConfigSpec, AppliesNamedKnobs)
{
    core::HwgcConfig config;
    std::string err;
    ASSERT_TRUE(fuzz::applyConfigSpec(
        config, "mq=32,mshrs=2,mem=ideal,bw=2.5,kernel=parallel,threads=3",
        &err))
        << err;
    EXPECT_EQ(config.markQueueEntries, 32u);
    EXPECT_EQ(config.sharedCacheParams.mshrs, 2u);
    EXPECT_EQ(config.memModel, core::MemModel::Ideal);
    EXPECT_EQ(config.bus.throttleBytesPerCycle, 2.5);
    EXPECT_EQ(config.kernel, KernelMode::ParallelBsp);
    EXPECT_EQ(config.hostThreads, 3u);

    core::HwgcConfig untouched;
    ASSERT_TRUE(fuzz::applyConfigSpec(untouched, "", &err)) << err;
    EXPECT_EQ(untouched.markQueueEntries,
              core::HwgcConfig{}.markQueueEntries);
}

TEST(FuzzConfigSpec, RejectsUnknownKeysAndBadValues)
{
    core::HwgcConfig config;
    std::string err;
    EXPECT_FALSE(fuzz::applyConfigSpec(config, "bogus=1", &err));
    EXPECT_NE(err.find("bogus"), std::string::npos) << err;
    EXPECT_FALSE(fuzz::applyConfigSpec(config, "mq=banana", &err));
    EXPECT_NE(err.find("mq"), std::string::npos) << err;
    EXPECT_FALSE(fuzz::applyConfigSpec(config, "mem=tape", &err));
    EXPECT_FALSE(fuzz::applyConfigSpec(config, "mq", &err));
}

TEST(FuzzConfigSpec, DevicesAxisBuildsFleetShapes)
{
    core::HwgcConfig config;
    std::string err;
    ASSERT_TRUE(fuzz::applyConfigSpec(config, "devices=2", &err)) << err;
    EXPECT_EQ(config.devices, 2u);
    // Zero devices is not a shape; the key is rejected wholesale.
    EXPECT_FALSE(fuzz::applyConfigSpec(config, "devices=0", &err));
    EXPECT_NE(err.find("devices"), std::string::npos) << err;
    // The thorough grid carries a fleet point.
    bool fleet_point = false;
    for (const fuzz::ConfigPoint &point : fuzz::fullGrid()) {
        fleet_point = fleet_point ||
            point.spec.find("devices=") != std::string::npos;
    }
    EXPECT_TRUE(fleet_point);
}

TEST(FuzzConfigSpec, KernelCaseNames)
{
    fuzz::KernelCase kc;
    ASSERT_TRUE(fuzz::kernelCaseFromName("dense", kc));
    EXPECT_EQ(kc.mode, KernelMode::Dense);
    ASSERT_TRUE(fuzz::kernelCaseFromName("parallel@4", kc));
    EXPECT_EQ(kc.mode, KernelMode::ParallelBsp);
    EXPECT_EQ(kc.threads, 4u);
    EXPECT_FALSE(fuzz::kernelCaseFromName("vectorized", kc));
    EXPECT_FALSE(fuzz::kernelCaseFromName("parallel@x", kc));
}

// ---------------------------------------------------------------------
// (3) Healthy schedules run the matrix green.
// ---------------------------------------------------------------------

TEST(FuzzDiffer, SmallScheduleMatrixIsGreen)
{
    const fuzz::FuzzResult result = fuzz::runSchedule(smallSchedule());
    EXPECT_TRUE(result.ok) << result.error;
    // 2 collects x 2 quick-grid configs x 4 kernel legs.
    EXPECT_EQ(result.collectsRun, 16u);
}

TEST(FuzzDiffer, EveryShapeFamilyIsGreen)
{
    for (const fuzz::Shape shape :
         {fuzz::Shape::Chain, fuzz::Shape::SpillStorm,
          fuzz::Shape::Sparse}) {
        SCOPED_TRACE(fuzz::shapeName(shape));
        fuzz::Schedule s = smallSchedule(13);
        s.shape = shape;
        s.liveObjects = 120;
        s.garbageObjects = 40;
        const fuzz::FuzzResult result = fuzz::runSchedule(s);
        EXPECT_TRUE(result.ok) << result.error;
    }
}

TEST(FuzzDiffer, FleetShapeMatrixIsGreen)
{
    // Two devices behind a shared bus + memory, collections alternating
    // across the array. Cycle digests must agree across every kernel
    // leg and the functional digests must match the single-device
    // baseline config exactly (cross-config comparison inside the run).
    fuzz::FuzzOptions options;
    options.grid = {{"baseline-ideal", "mem=ideal"},
                    {"fleet2-ideal", "devices=2,mem=ideal"}};
    const fuzz::FuzzResult result =
        fuzz::runSchedule(smallSchedule(21), options);
    EXPECT_TRUE(result.ok) << result.error;
    // 2 collects x 2 configs x 4 kernel legs.
    EXPECT_EQ(result.collectsRun, 16u);
}

// ---------------------------------------------------------------------
// (4) The acceptance criterion: an injected mark-bit bug is caught,
//     dumped, and the repro line reproduces it.
// ---------------------------------------------------------------------

TEST(FuzzInjection, MarkBitBugIsCaughtDumpedAndReproducible)
{
    fuzz::FuzzOptions options;
    options.injectMarkBug = true;
    options.writeArtifacts = true;
    options.artifactDir = ::testing::TempDir();
    options.driverName = "fuzz_driver";

    const fuzz::Schedule schedule = smallSchedule(99);
    const fuzz::FuzzResult result = fuzz::runSchedule(schedule, options);

    ASSERT_FALSE(result.ok) << "an injected mark-set bug slipped through";
    EXPECT_NE(result.error.find("reachable but unmarked"),
              std::string::npos)
        << result.error;
    EXPECT_GE(result.failedOp, 0);

    // Artifacts: the schedule, a pid-suffixed crash checkpoint, and a
    // repro line naming both.
    ASSERT_FALSE(result.schedulePath.empty());
    EXPECT_TRUE(fileExists(result.schedulePath)) << result.schedulePath;
    ASSERT_FALSE(result.crashPath.empty());
    EXPECT_NE(result.crashPath.find(
                  ".crash." + std::to_string(::getpid())),
              std::string::npos)
        << result.crashPath;
    EXPECT_TRUE(fileExists(result.crashPath)) << result.crashPath;
    ASSERT_FALSE(result.reproLine.empty());
    EXPECT_NE(result.reproLine.find("--schedule="), std::string::npos);
    EXPECT_NE(result.reproLine.find("--kernel="), std::string::npos);
    EXPECT_NE(result.reproLine.find("--inject-mark-bug"),
              std::string::npos);

    // The crash checkpoint is a valid device checkpoint.
    EXPECT_GT(checkpoint::Deserializer::listChunks(result.crashPath).size(),
              3u);

    // The dumped schedule + named (config, kernel) reproduce the
    // divergence — the repro line works.
    fuzz::Schedule replay;
    std::string err;
    ASSERT_TRUE(fuzz::loadFile(result.schedulePath, replay, &err)) << err;
    fuzz::FuzzOptions narrowed;
    narrowed.injectMarkBug = true;
    for (const fuzz::ConfigPoint &point : fuzz::quickGrid()) {
        if (point.name == result.configName) {
            narrowed.grid = {point};
        }
    }
    ASSERT_FALSE(narrowed.grid.empty())
        << "diverged config " << result.configName
        << " not found in quick grid";
    fuzz::KernelCase kc;
    ASSERT_TRUE(fuzz::kernelCaseFromName(result.kernelName, kc));
    narrowed.kernels = {kc};
    const fuzz::FuzzResult again = fuzz::runSchedule(replay, narrowed);
    EXPECT_FALSE(again.ok) << "repro line did not reproduce";
    EXPECT_NE(again.error.find("reachable but unmarked"),
              std::string::npos)
        << again.error;

    // Sanity: the same schedule without injection is green.
    const fuzz::FuzzResult clean = fuzz::runSchedule(replay);
    EXPECT_TRUE(clean.ok) << clean.error;
}

// ---------------------------------------------------------------------
// (5) Shrinking.
// ---------------------------------------------------------------------

TEST(FuzzShrink, MinimizedScheduleStillFails)
{
    fuzz::FuzzOptions options;
    options.injectMarkBug = true;

    fuzz::Schedule schedule = smallSchedule(123);
    schedule.ops = {{fuzz::Op::Kind::Mutate, 100},
                    {fuzz::Op::Kind::Collect, 0},
                    {fuzz::Op::Kind::Mutate, 300},
                    {fuzz::Op::Kind::Collect, 0},
                    {fuzz::Op::Kind::Mutate, 200},
                    {fuzz::Op::Kind::Collect, 0}};
    const fuzz::FuzzResult failure = fuzz::runSchedule(schedule, options);
    ASSERT_FALSE(failure.ok);

    fuzz::ShrinkStats stats;
    const fuzz::Schedule minimized =
        fuzz::shrink(schedule, options, failure, &stats);
    EXPECT_LT(minimized.ops.size(), schedule.ops.size());
    EXPECT_LE(minimized.liveObjects, schedule.liveObjects);
    EXPECT_GE(minimized.collects(), 1u);
    EXPECT_GT(stats.probes, 0u);
    EXPECT_LE(stats.probes, 30u);

    const fuzz::FuzzResult still = fuzz::runSchedule(minimized, options);
    EXPECT_FALSE(still.ok) << "shrunk schedule no longer fails";
}

// ---------------------------------------------------------------------
// (6) Farm snapshots fork bit-identically.
// ---------------------------------------------------------------------

/** What one pause + one mutation of a universe produces. */
struct ForkDigest
{
    Tick markCycles = 0;
    Tick sweepCycles = 0;
    std::uint64_t markedCount = 0;
    std::uint64_t markDigest = 0;
    std::uint64_t freed = 0;
    std::uint64_t liveAfterMutate = 0;
    std::uint64_t bytesAfterMutate = 0;
};

ForkDigest
pauseAndMutate(runtime::Heap &heap, workload::GraphBuilder &builder,
               mem::PhysMem &mem, const core::HwgcConfig &config)
{
    core::HwgcDevice device(mem, heap.pageTable(), config);
    heap.clearAllMarks();
    heap.publishRoots();
    device.configure(heap);
    ForkDigest d;
    const auto mark = device.runMark();
    d.markCycles = mark.cycles;
    d.markedCount = heap.countMarked();
    d.markDigest = gc::markSetDigest(heap);
    const auto sweep = device.runSweep();
    d.sweepCycles = sweep.cycles;
    d.freed = heap.onAfterSweep();
    // The restored builder must continue its RNG stream exactly.
    builder.mutate(0.3);
    d.liveAfterMutate = heap.liveObjects();
    d.bytesAfterMutate = heap.bytesAllocated();
    return d;
}

TEST(FuzzFarm, SnapshotForksBitIdentically)
{
    const std::string path = tmpPath("fork.farm");

    // Build + warm the original universe: one pause, one mutation.
    workload::GraphParams params;
    params.liveObjects = 400;
    params.garbageObjects = 150;
    params.seed = 77;
    mem::PhysMem mem;
    runtime::Heap heap(mem);
    workload::GraphBuilder builder(heap, params);
    builder.build();
    {
        core::HwgcDevice warm(mem, heap.pageTable(), core::HwgcConfig{});
        heap.clearAllMarks();
        heap.publishRoots();
        warm.configure(heap);
        warm.runMark();
        warm.runSweep();
        heap.onAfterSweep();
        builder.mutate(0.25);
    }

    fuzz::FarmMeta meta;
    meta.seed = params.seed;
    meta.warmPauses = 1;
    meta.liveObjects = heap.liveObjects();
    meta.bytesAllocated = heap.bytesAllocated();
    fuzz::saveFarmSnapshot(path, meta, params, heap, builder, mem);

    // Fork twice under different configs *before* running the
    // original forward, so restored state cannot share anything.
    fuzz::FarmUniverse forkA = fuzz::loadFarmSnapshot(path);
    EXPECT_EQ(forkA.meta.seed, params.seed);
    EXPECT_EQ(forkA.meta.liveObjects, meta.liveObjects);
    EXPECT_EQ(forkA.heap->liveObjects(), heap.liveObjects());
    EXPECT_EQ(forkA.heap->bytesAllocated(), heap.bytesAllocated());
    EXPECT_EQ(forkA.builder->objectsBuilt(), builder.objectsBuilt());

    fuzz::FarmUniverse forkB = fuzz::loadFarmSnapshot(path);

    core::HwgcConfig base;
    core::HwgcConfig tiny;
    tiny.markQueueEntries = 32;
    tiny.memModel = core::MemModel::Ideal;

    const ForkDigest a =
        pauseAndMutate(*forkA.heap, *forkA.builder, *forkA.mem, base);
    const ForkDigest b =
        pauseAndMutate(*forkB.heap, *forkB.builder, *forkB.mem, tiny);
    const ForkDigest o = pauseAndMutate(heap, builder, mem, base);

    // Same config: the fork is bit-identical to the original, cycles
    // included.
    EXPECT_EQ(o.markCycles, a.markCycles);
    EXPECT_EQ(o.sweepCycles, a.sweepCycles);
    EXPECT_EQ(o.markedCount, a.markedCount);
    EXPECT_EQ(o.markDigest, a.markDigest);
    EXPECT_EQ(o.freed, a.freed);
    EXPECT_EQ(o.liveAfterMutate, a.liveAfterMutate);
    EXPECT_EQ(o.bytesAfterMutate, a.bytesAfterMutate);

    // Different config: cycles may differ, the functional outcome and
    // the continued mutator stream may not.
    EXPECT_EQ(o.markedCount, b.markedCount);
    EXPECT_EQ(o.markDigest, b.markDigest);
    EXPECT_EQ(o.freed, b.freed);
    EXPECT_EQ(o.liveAfterMutate, b.liveAfterMutate);
    EXPECT_EQ(o.bytesAfterMutate, b.bytesAfterMutate);
}

using FuzzFarmDeathTest = ::testing::Test;

TEST(FuzzFarmDeathTest, RejectsTruncatedSnapshot)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    const std::string good = tmpPath("trunc.farm");
    const std::string bad = tmpPath("trunc-cut.farm");

    workload::GraphParams params;
    params.liveObjects = 60;
    params.garbageObjects = 20;
    params.seed = 3;
    mem::PhysMem mem;
    runtime::Heap heap(mem);
    workload::GraphBuilder builder(heap, params);
    builder.build();
    fuzz::saveFarmSnapshot(good, {}, params, heap, builder, mem);

    std::ifstream in(good, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    ASSERT_GT(bytes.size(), 256u);
    std::ofstream out(bad, std::ios::binary);
    out.write(bytes.data(), std::streamsize(bytes.size() / 2));
    out.close();

    EXPECT_DEATH(fuzz::loadFarmSnapshot(bad), "");
}

} // namespace
} // namespace hwgc
