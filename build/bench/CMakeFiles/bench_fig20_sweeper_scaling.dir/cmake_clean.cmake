file(REMOVE_RECURSE
  "CMakeFiles/bench_fig20_sweeper_scaling.dir/bench_fig20_sweeper_scaling.cc.o"
  "CMakeFiles/bench_fig20_sweeper_scaling.dir/bench_fig20_sweeper_scaling.cc.o.d"
  "bench_fig20_sweeper_scaling"
  "bench_fig20_sweeper_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig20_sweeper_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
