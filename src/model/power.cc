/**
 * @file
 * Power model implementation.
 */

#include "power.h"

namespace hwgc::model
{

double
PowerModel::dramPowerMw(const DramActivity &activity) const
{
    if (activity.cycles == 0) {
        return params_.dramBackgroundMw;
    }
    const double seconds = double(activity.cycles) / coreClockHz;
    const double activate_j =
        double(activity.activates) * params_.activateNj * 1e-9;
    // Reads and writes split the byte count in proportion to their
    // request counts (requests are mostly same-sized within a phase).
    const double total_reqs =
        double(activity.reads + activity.writes);
    const double read_frac = total_reqs == 0.0
        ? 0.5 : double(activity.reads) / total_reqs;
    const double burst_j = double(activity.bytes) *
        (read_frac * params_.readPjPerByte +
         (1.0 - read_frac) * params_.writePjPerByte) * 1e-12;
    return params_.dramBackgroundMw +
        (activate_j + burst_j) / seconds * 1e3;
}

double
PowerModel::unitPowerMw(const core::HwgcConfig &config) const
{
    return area_.hwgcArea(config).total() * params_.unitMwPerMm2;
}

EnergyReport
PowerModel::cpuEnergy(const DramActivity &activity) const
{
    EnergyReport report;
    report.seconds = double(activity.cycles) / coreClockHz;
    report.computePowerMw = params_.rocketCoreMw;
    report.dramPowerMw = dramPowerMw(activity);
    return report;
}

EnergyReport
PowerModel::hwgcEnergy(const DramActivity &activity,
                       const core::HwgcConfig &config) const
{
    EnergyReport report;
    report.seconds = double(activity.cycles) / coreClockHz;
    report.computePowerMw = unitPowerMw(config);
    report.dramPowerMw = dramPowerMw(activity);
    return report;
}

} // namespace hwgc::model
