/**
 * @file
 * Spilling mark queue implementation.
 */

#include "mark_queue.h"

namespace hwgc::core
{

MarkQueue::MarkQueue(std::string name, const HwgcConfig &config,
                     mem::MemPort *port, Addr spill_base,
                     std::uint64_t spill_bytes)
    : Clocked(std::move(name)), config_(config), port_(port),
      spillBase_(spill_base),
      spillCapacityEntries_(spill_bytes / entryBytes())
{
    panic_if(port_ == nullptr, "mark queue needs a spill port");
    panic_if(spill_base % lineBytes != 0,
             "spill region must be line aligned");
    panic_if(spill_bytes % lineBytes != 0,
             "spill region must be a line multiple");
    panic_if(config_.spillQueueEntries < granuleEntries(),
             "inQ/outQ must hold at least one spill granule");
}

Word
MarkQueue::pack(Addr ref) const
{
    if (!config_.compressRefs) {
        return ref;
    }
    // Heap VAs are 8-byte aligned and < 2^35 (§V-C: "the lowest 3 bit
    // are 0"; the upper bits denote the space and are recovered by
    // the reverse function — here they are simply zero).
    const Word packed = ref >> 3;
    panic_if(packed > 0xffffffffULL,
             "reference %#llx not compressible to 32 bits",
             (unsigned long long)ref);
    return packed;
}

Addr
MarkQueue::unpack(Word packed) const
{
    return config_.compressRefs ? (packed << 3) : packed;
}

void
MarkQueue::noteDepth()
{
    const std::uint64_t d = depth();
    if (d > maxDepth_.value()) {
        maxDepth_.set(d);
    }
    const std::uint64_t spill_bytes =
        (spillTail_ - spillHead_) * entryBytes();
    if (spill_bytes > peakSpill_.value()) {
        peakSpill_.set(spill_bytes);
    }
}

bool
MarkQueue::canEnqueue() const
{
    // Effective on-chip capacity doubles with compression for the
    // same SRAM budget (markQueueEntries is counted in 64-bit slots).
    const std::uint64_t qcap = std::uint64_t(config_.markQueueEntries) *
        (config_.compressRefs ? 2 : 1);
    if (q_.size() < qcap) {
        return true;
    }
    return outQ_.size() < config_.spillQueueEntries &&
        (spillTail_ - spillHead_) + granuleEntries() <=
        spillCapacityEntries_;
}

void
MarkQueue::enqueue(Addr ref)
{
    pokeWakeup(); // Fill level feeds the spill engine's wakeup.
    if (consumer_ != nullptr) {
        pokeWakeup(*consumer_); // canDequeue() may have just risen.
    }
    panic_if(!canEnqueue(), "mark queue overflow");
    const std::uint64_t qcap = std::uint64_t(config_.markQueueEntries) *
        (config_.compressRefs ? 2 : 1);
    if (q_.size() < qcap) {
        q_.push_back(pack(ref));
    } else {
        outQ_.push_back(pack(ref));
    }
    noteDepth();
}

bool
MarkQueue::canDequeue() const
{
    return !q_.empty() || !inQ_.empty();
}

Addr
MarkQueue::dequeue()
{
    pokeWakeup(); // Draining may enable a refill or bypass copy.
    panic_if(!canDequeue(), "mark queue underflow");
    Word packed;
    if (!q_.empty()) { // Priority to the main queue.
        packed = q_.front();
        q_.pop_front();
    } else {
        packed = inQ_.front();
        inQ_.pop_front();
    }
    return unpack(packed);
}

bool
MarkQueue::throttle() const
{
    return outQ_.size() >= config_.spillThrottle;
}

bool
MarkQueue::empty() const
{
    return q_.empty() && outQ_.empty() && inQ_.empty() &&
        spillHead_ == spillTail_ && !writeInFlight_ && !readInFlight_;
}

std::uint64_t
MarkQueue::depth() const
{
    return q_.size() + outQ_.size() + inQ_.size() +
        (spillTail_ - spillHead_);
}

void
MarkQueue::onResponse(const mem::MemResponse &resp, Tick now)
{
    pokeWakeup();
    (void)now;
    if (resp.req.isWrite()) {
        panic_if(!writeInFlight_, "unexpected spill write ack");
        writeInFlight_ = false;
        return;
    }
    panic_if(!readInFlight_, "unexpected spill read response");
    readInFlight_ = false;
    for (unsigned i = 0; i < granuleEntries(); ++i) {
        Word entry;
        if (config_.compressRefs) {
            const Word word = resp.rdata[i / 2];
            entry = (i % 2 == 0) ? (word & 0xffffffffULL) : (word >> 32);
        } else {
            entry = resp.rdata[i];
        }
        inQ_.push_back(entry);
    }
    spillHead_ += granuleEntries();
    if (consumer_ != nullptr) {
        pokeWakeup(*consumer_); // The refill made inQ dequeueable.
    }
}

void
MarkQueue::tick(Tick now)
{
    const unsigned granule = granuleEntries();

    // 1. Spill writes first (deadlock avoidance).
    if (!writeInFlight_ && outQ_.size() >= granule) {
        mem::MemRequest req;
        req.paddr = spillBase_ +
            (spillTail_ % spillCapacityEntries_) * entryBytes();
        req.size = lineBytes;
        req.op = mem::Op::Write;
        if (port_->canSend(req)) {
            for (unsigned i = 0; i < granule; ++i) {
                const Word entry = outQ_.front();
                outQ_.pop_front();
                if (config_.compressRefs) {
                    if (i % 2 == 0) {
                        req.wdata[i / 2] = entry;
                    } else {
                        req.wdata[i / 2] |= entry << 32;
                    }
                } else {
                    req.wdata[i] = entry;
                }
            }
            spillTail_ += granule;
            entriesSpilled_ += granule;
            ++spillWrites_;
            writeInFlight_ = true;
            port_->send(req, now);
            noteDepth();
            DPRINTF(now, "MarkQueue",
                    "%s: spill write tail=%llu entries=%u",
                    name().c_str(), (unsigned long long)spillTail_,
                    granule);
            return;
        }
    }

    // 2. Refill from the spill region when no full write granule is
    //    pending. (outQ may hold a sub-granule remainder; requiring
    //    it to be empty would deadlock — writes need a full granule,
    //    the bypass needs an empty spill region. Entry order does not
    //    matter for GC correctness, as the paper notes.)
    if (!readInFlight_ && outQ_.size() < granule &&
        spillTail_ - spillHead_ >= granule &&
        inQ_.size() + granule <= config_.spillQueueEntries) {
        mem::MemRequest req;
        req.paddr = spillBase_ +
            (spillHead_ % spillCapacityEntries_) * entryBytes();
        req.size = lineBytes;
        req.op = mem::Op::Read;
        if (port_->canSend(req)) {
            ++spillReads_;
            readInFlight_ = true;
            port_->send(req, now);
            DPRINTF(now, "MarkQueue", "%s: spill read head=%llu",
                    name().c_str(), (unsigned long long)spillHead_);
            return;
        }
    }

    // 3. Bypass: direct outQ -> inQ copy while memory holds nothing
    //    (keeps FIFO-ish order and drains partial granules).
    if (spillHead_ == spillTail_ && !readInFlight_) {
        unsigned moved = 0;
        while (moved < 4 && !outQ_.empty() &&
               inQ_.size() < config_.spillQueueEntries) {
            inQ_.push_back(outQ_.front());
            outQ_.pop_front();
            ++moved;
        }
    }
}

bool
MarkQueue::busy() const
{
    // Any queued entry counts as pending work: the consumer will
    // drain it on a later cycle, so the system must not go idle.
    return !empty();
}

Tick
MarkQueue::nextWakeup(Tick now) const
{
    // Mirrors the three tick() actions (before their port checks, so
    // port-full cycles retry densely). Entries sitting in q_/inQ_ are
    // the *marker's* work, and in-flight spill traffic resolves via
    // onResponse — neither needs a tick here.
    const unsigned granule = granuleEntries();
    if (!writeInFlight_ && outQ_.size() >= granule) {
        return now; // Spill write attempt.
    }
    if (!readInFlight_ && outQ_.size() < granule &&
        spillTail_ - spillHead_ >= granule &&
        inQ_.size() + granule <= config_.spillQueueEntries) {
        return now; // Refill read attempt.
    }
    if (spillHead_ == spillTail_ && !readInFlight_ && !outQ_.empty() &&
        inQ_.size() < config_.spillQueueEntries) {
        return now; // Bypass copy.
    }
    return maxTick;
}

CycleClass
MarkQueue::cycleClass(Tick now) const
{
    (void)now;
    if (empty()) {
        return CycleClass::Idle;
    }
    // The three tick() actions in priority order. nextWakeup() fires
    // for the first two before their port check (dense retry), so a
    // wanted-but-port-blocked cycle must classify as a bus stall, not
    // Busy.
    const unsigned granule = granuleEntries();
    const bool wants_write = !writeInFlight_ && outQ_.size() >= granule;
    const bool wants_read = !readInFlight_ && outQ_.size() < granule &&
        spillTail_ - spillHead_ >= granule &&
        inQ_.size() + granule <= config_.spillQueueEntries;
    if (wants_write || wants_read) {
        mem::MemRequest probe;
        probe.size = lineBytes;
        return port_->canSend(probe) ? CycleClass::Busy
                                     : CycleClass::StallBus;
    }
    if (spillHead_ == spillTail_ && !readInFlight_ && !outQ_.empty() &&
        inQ_.size() < config_.spillQueueEntries) {
        return CycleClass::Busy; // Bypass copy.
    }
    if (writeInFlight_ || readInFlight_) {
        return CycleClass::StallDram; // Spill traffic in flight.
    }
    // Entries parked (q_/inQ_, a sub-granule outQ remainder, or the
    // spill region) waiting for the consumer to drain them.
    return CycleClass::StallDownstreamFull;
}

namespace
{

void
saveWordDeque(checkpoint::Serializer &ser, const std::deque<Word> &q)
{
    ser.putU64(q.size());
    for (const Word w : q) {
        ser.putU64(w);
    }
}

void
restoreWordDeque(checkpoint::Deserializer &des, std::deque<Word> &q)
{
    q.clear();
    const std::uint64_t count = des.getU64();
    for (std::uint64_t i = 0; i < count; ++i) {
        q.push_back(des.getU64());
    }
}

} // namespace

void
MarkQueue::save(checkpoint::Serializer &ser) const
{
    saveWordDeque(ser, q_);
    saveWordDeque(ser, outQ_);
    saveWordDeque(ser, inQ_);
    ser.putU64(spillHead_);
    ser.putU64(spillTail_);
    ser.putBool(writeInFlight_);
    ser.putBool(readInFlight_);
    checkpoint::putStat(ser, spillWrites_);
    checkpoint::putStat(ser, spillReads_);
    checkpoint::putStat(ser, entriesSpilled_);
    checkpoint::putStat(ser, maxDepth_);
    checkpoint::putStat(ser, peakSpill_);
}

void
MarkQueue::restore(checkpoint::Deserializer &des)
{
    restoreWordDeque(des, q_);
    restoreWordDeque(des, outQ_);
    restoreWordDeque(des, inQ_);
    spillHead_ = des.getU64();
    spillTail_ = des.getU64();
    writeInFlight_ = des.getBool();
    readInFlight_ = des.getBool();
    checkpoint::getStat(des, spillWrites_);
    checkpoint::getStat(des, spillReads_);
    checkpoint::getStat(des, entriesSpilled_);
    checkpoint::getStat(des, maxDepth_);
    checkpoint::getStat(des, peakSpill_);
}

void
MarkQueue::reset()
{
    q_.clear();
    outQ_.clear();
    inQ_.clear();
    spillHead_ = spillTail_ = 0;
    panic_if(writeInFlight_ || readInFlight_,
             "reset with spill traffic in flight");
}

void
MarkQueue::resetStats()
{
    spillWrites_.reset();
    spillReads_.reset();
    entriesSpilled_.reset();
    maxDepth_.reset();
    peakSpill_.reset();
}

} // namespace hwgc::core
