/**
 * @file
 * A fixed-capacity single-producer/single-consumer ring for the
 * ParallelBsp staging paths (DESIGN.md §8).
 *
 * Every inter-partition hand-off staged during a parallel evaluate
 * phase has exactly one producer (the component whose tick or entry
 * point stages the item, running on one worker thread) and exactly
 * one consumer (the commit thread, which replays at bspCommit after
 * the evaluate join). The ring therefore needs no locks: an
 * acquire/release head/tail pair is enough, and the slots themselves
 * are plain storage handed off by the release store.
 *
 * Capacity is fixed at construction (rounded up to a power of two)
 * and sized from the config's queue bounds, so a full ring is a
 * logic error — push() returns false and the call site panics with
 * the ring's name rather than silently dropping traffic.
 */

#ifndef HWGC_SIM_SPSC_RING_H
#define HWGC_SIM_SPSC_RING_H

#include <atomic>
#include <cstdint>
#include <vector>

#include "sim/logging.h"

namespace hwgc
{

template <typename T>
class SpscRing
{
  public:
    explicit SpscRing(std::size_t capacity = 0) { reserve(capacity); }

    /** (Re)sizes the ring; only legal while empty. */
    void
    reserve(std::size_t capacity)
    {
        panic_if(!empty(), "SpscRing resized while non-empty");
        std::size_t cap = 1;
        while (cap < capacity) {
            cap <<= 1;
        }
        slots_.assign(cap, T{});
        mask_ = std::uint32_t(cap - 1);
        head_.store(0, std::memory_order_relaxed);
        tail_.store(0, std::memory_order_relaxed);
    }

    std::size_t capacity() const { return slots_.size(); }

    /** Producer side: false when full (caller panics). */
    bool
    push(const T &item)
    {
        const std::uint32_t tail = tail_.load(std::memory_order_relaxed);
        const std::uint32_t head =
            head_.load(std::memory_order_acquire);
        if (tail - head >= slots_.size()) {
            return false;
        }
        slots_[tail & mask_] = item;
        tail_.store(tail + 1, std::memory_order_release);
        return true;
    }

    /** Consumer side: false when empty. */
    bool
    pop(T &out)
    {
        const std::uint32_t head = head_.load(std::memory_order_relaxed);
        const std::uint32_t tail =
            tail_.load(std::memory_order_acquire);
        if (head == tail) {
            return false;
        }
        out = slots_[head & mask_];
        head_.store(head + 1, std::memory_order_release);
        return true;
    }

    /**
     * Occupancy as the consumer (or any quiesced thread) sees it.
     * Exact once the producers have joined — which is the only time
     * the commit thread reads it.
     */
    std::size_t
    size() const
    {
        return tail_.load(std::memory_order_acquire) -
               head_.load(std::memory_order_acquire);
    }

    bool empty() const { return size() == 0; }

  private:
    std::vector<T> slots_;
    std::uint32_t mask_ = 0;
    // The indices live on separate cache lines so the producing
    // worker and the consuming commit thread never false-share.
    alignas(64) std::atomic<std::uint32_t> head_{0};
    alignas(64) std::atomic<std::uint32_t> tail_{0};
};

} // namespace hwgc

#endif // HWGC_SIM_SPSC_RING_H
