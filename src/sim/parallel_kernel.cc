/**
 * @file
 * ParallelBsp kernel: the worker pool, the per-partition replay of
 * the event kernel's at-turn pass, and System::executeCycleBsp().
 */

#include "sim/parallel_kernel.h"

#include <algorithm>
#include <map>

#include "sim/logging.h"

namespace hwgc
{

namespace detail
{
thread_local std::uint64_t *bspPokeMask = nullptr;
thread_local unsigned bspActivePartition = ~0u;
thread_local std::uint64_t bspStagedEvents = 0;
} // namespace detail

// Out of line so ~unique_ptr<ParallelKernel> sees the complete type.
System::System() = default;
System::~System() = default;

namespace
{
/**
 * One busy-wait iteration. For the first @p pause_iters a PAUSE-class
 * hint keeps the wait on-core — on a non-oversubscribed host the
 * partner answers within a few hundred nanoseconds and parking or
 * even yielding would cost more than the whole evaluate phase. Past
 * that the partner evidently is not running, so yield the core to it;
 * spinning on would burn the rest of our timeslice while the partner
 * waits for a core.
 */
inline void
cpuRelax(unsigned spins, unsigned pause_iters)
{
    if (spins < pause_iters) {
#if defined(__x86_64__) || defined(__i386__)
        __builtin_ia32_pause();
#elif defined(__aarch64__)
        asm volatile("isb" ::: "memory");
#else
        std::this_thread::yield();
#endif
    } else {
        std::this_thread::yield();
    }
}
} // namespace

ParallelKernel::ParallelKernel(System &sys) : sys_(sys)
{
    const auto &comps = sys.components_;
    panic_if(comps.empty(), "ParallelBsp kernel with no components");

    // Normalise the user's arbitrary partition labels to dense
    // indices, ordered by label so the schedule is reproducible.
    std::map<unsigned, unsigned> dense;
    for (std::size_t i = 0; i < comps.size(); ++i) {
        dense.emplace(sys.part_[i], 0);
    }
    unsigned next = 0;
    for (auto &entry : dense) {
        entry.second = next++;
    }
    partComps_.resize(dense.size());
    partMask_.resize(dense.size(), 0);
    // Publish the normalized labels on the System: the staging
    // predicate (Clocked::bspStagingActive) compares a component's
    // label against detail::bspActivePartition on every cross-call.
    // Filled here, before any worker thread exists, so the workers
    // only ever read it.
    sys.densePart_.assign(comps.size(), 0);
    for (std::size_t i = 0; i < comps.size(); ++i) {
        const unsigned p = dense[sys.part_[i]];
        sys.densePart_[i] = p;
        partComps_[p].push_back(i);
        partMask_[p] |= std::uint64_t(1) << i;
    }

    // Partition legality (see System::setPartition): a declared
    // wakeup edge crossing partitions *forward* would let the event
    // kernel re-poll (and possibly tick) the destination in the same
    // cycle as the source's tick, which the evaluate phase cannot
    // reproduce — cross-partition pokes only merge at commit.
    // Backward edges are fine: the destination's turn is already past
    // in the same-cycle pass of every kernel.
    for (std::size_t i = 0; i < comps.size(); ++i) {
        std::uint64_t m = sys.succ_[i];
        while (m != 0) {
            const std::size_t j = std::size_t(__builtin_ctzll(m));
            m &= m - 1;
            panic_if(j > i && sys.part_[j] != sys.part_[i],
                     "ParallelBsp: declared wakeup edge %s -> %s "
                     "crosses partitions forward; co-partition them "
                     "or re-order registration",
                     comps[i]->name().c_str(), comps[j]->name().c_str());
        }
    }

    const unsigned requested = sys.hostThreads_ != 0
        ? sys.hostThreads_
        : std::max(1u, std::thread::hardware_concurrency());
    numWorkers_ =
        std::max(1u, std::min(requested, unsigned(partComps_.size())));

    // Oversubscribed (workers ≥ host cores, e.g. a forced thread
    // count on a small CI box): busy-waiting can only steal the core
    // the partner thread needs, so yield immediately and park fast.
    // Results are identical either way; only wall-clock differs.
    const unsigned cores =
        std::max(1u, std::thread::hardware_concurrency());
    if (numWorkers_ >= cores) {
        pauseIters_ = 0;
        parkAfter_ = 256;
    }

    dueLocal_.assign(partComps_.size(), 0);
    dirtyLocal_.assign(partComps_.size(), 0);
    pass_.assign(partComps_.size(), Pass{});
    workerWork_.assign(numWorkers_, 0);
    partWorker_.resize(partComps_.size());
    for (unsigned p = 0; p < partComps_.size(); ++p) {
        partWorker_[p] = p % numWorkers_;
    }
    if (!sys.pendingWorkerCost_.empty()) {
        // A cost-model rebalance requested before the pool existed
        // (e.g. restored profile data): apply it now.
        rebalance(sys.pendingWorkerCost_);
        sys.pendingWorkerCost_.clear();
    }

    slots_.reserve(numWorkers_);
    for (unsigned w = 0; w < numWorkers_; ++w) {
        slots_.push_back(std::make_unique<Slot>());
    }
    for (unsigned w = 1; w < numWorkers_; ++w) {
        slots_[w]->thread =
            std::thread([this, w] { workerLoop(w); });
    }
}

ParallelKernel::~ParallelKernel()
{
    stop_.store(true, std::memory_order_release);
    for (unsigned w = 1; w < numWorkers_; ++w) {
        Slot &s = *slots_[w];
        s.work = 0;
        signal(s);
        s.thread.join();
    }
}

void
ParallelKernel::signal(Slot &s)
{
    // seq_cst store, then seq_cst load of `sleeping`: pairs with the
    // worker's seq_cst store of `sleeping` followed by a seq_cst load
    // of `req`, so at least one side observes the other and the
    // wakeup cannot be lost.
    s.req.store(s.req.load(std::memory_order_relaxed) + 1,
                std::memory_order_seq_cst);
    if (s.sleeping.load(std::memory_order_seq_cst)) {
        std::lock_guard<std::mutex> lk(s.m);
        s.cv.notify_one();
    }
}

void
ParallelKernel::awaitAck(Slot &s)
{
    const std::uint64_t want = s.req.load(std::memory_order_relaxed);
    // The evaluate phase is a handful of component ticks; a parked
    // commit thread would cost more than it saves.
    unsigned spins = 0;
    while (s.ack.load(std::memory_order_acquire) != want) {
        cpuRelax(spins++, pauseIters_);
    }
}

void
ParallelKernel::workerLoop(unsigned slot)
{
    Slot &s = *slots_[slot];
    std::uint64_t seen = 0;
    for (;;) {
        unsigned spins = 0;
        while (s.req.load(std::memory_order_acquire) == seen) {
            if (++spins < parkAfter_) {
                cpuRelax(spins, pauseIters_);
                continue;
            }
            s.sleeping.store(true, std::memory_order_seq_cst);
            if (s.req.load(std::memory_order_seq_cst) == seen) {
                std::unique_lock<std::mutex> lk(s.m);
                s.cv.wait(lk, [&] {
                    return s.req.load(std::memory_order_acquire) !=
                           seen;
                });
            }
            s.sleeping.store(false, std::memory_order_relaxed);
        }
        seen = s.req.load(std::memory_order_acquire);
        if (stop_.load(std::memory_order_acquire)) {
            s.ack.store(seen, std::memory_order_release);
            return;
        }
        std::uint64_t work = s.work;
        while (work != 0) {
            const unsigned p = unsigned(__builtin_ctzll(work));
            work &= work - 1;
            pass_[p] = runPartition(p);
        }
        s.ack.store(seen, std::memory_order_release);
    }
}

/**
 * Replays System::executeCycle()'s at-turn pass over one partition's
 * components, against the partition-local due/dirty slices seeded by
 * the commit thread. Pokes from inside ticks land in the local mask
 * via detail::bspPokeMask: same-partition pokes are visible at the
 * poked component's turn exactly as in the serial kernel, and
 * cross-partition pokes ride back in Pass::newDirty to merge at
 * commit. wake_ writes touch only this partition's indices, so no
 * two workers ever write the same element.
 */
ParallelKernel::Pass
ParallelKernel::runPartition(unsigned p)
{
    System &sys = sys_;
    const Tick now = sys.now_;
    Pass out;
    std::uint64_t local = dirtyLocal_[p];
    std::uint64_t due = dueLocal_[p];
    const std::uint64_t staged0 = detail::bspStagedEvents;
    detail::bspPokeMask = &local;
    detail::bspActivePartition = p;
    for (const std::size_t i : partComps_[p]) {
        const std::uint64_t bit = std::uint64_t(1) << i;
        Tick w;
        if ((due & bit) != 0) {
            due &= ~bit;
            w = now;
        } else if ((local & bit) != 0 ||
                   (sys.declared_ & bit) == 0) {
            w = sys.components_[i]->nextWakeup(now);
            sys.wake_[i] = w;
            local &= ~bit;
        } else {
            w = sys.wake_[i];
        }
        if (w <= now) {
            sys.components_[i]->tick(now);
            out.ticked |= bit;
            local |= sys.succ_[i] | bit;
        } else {
            if (sys.components_[i]->hasFastForward()) {
                sys.components_[i]->fastForward(now, now + 1);
            }
            out.next = std::min(out.next, w);
        }
    }
    detail::bspPokeMask = nullptr;
    detail::bspActivePartition = ~0u;
    out.newDirty = local;
    out.stagedEvents = detail::bspStagedEvents - staged0;
    return out;
}

void
ParallelKernel::rebalance(const std::vector<std::uint64_t> &busy)
{
    std::vector<std::uint64_t> cost(partComps_.size(), 0);
    for (unsigned p = 0; p < partComps_.size(); ++p) {
        for (const std::size_t i : partComps_[p]) {
            if (i < busy.size()) {
                cost[p] += busy[i];
            }
        }
    }
    // Greedy LPT: heaviest partition first onto the least-loaded
    // worker. Ties break by partition index, so the assignment is a
    // deterministic function of the measured costs.
    std::vector<unsigned> order(partComps_.size());
    for (unsigned p = 0; p < order.size(); ++p) {
        order[p] = p;
    }
    std::sort(order.begin(), order.end(),
              [&](unsigned a, unsigned b) {
                  return cost[a] != cost[b] ? cost[a] > cost[b] : a < b;
              });
    std::vector<std::uint64_t> load(numWorkers_, 0);
    for (const unsigned p : order) {
        unsigned best = 0;
        for (unsigned w = 1; w < numWorkers_; ++w) {
            if (load[w] < load[best]) {
                best = w;
            }
        }
        partWorker_[p] = best;
        load[best] += cost[p];
    }
}

void
System::rebalancePartitionWorkers(
    const std::vector<std::uint64_t> &busy_per_component)
{
    if (bsp_ == nullptr) {
        pendingWorkerCost_ = busy_per_component;
        return;
    }
    bsp_->rebalance(busy_per_component);
}

void
ParallelKernel::evaluate(std::uint64_t dispatch)
{
    // One dispatched partition (the common idle-phase case) or one
    // worker: no other thread could help, skip the signalling.
    if (numWorkers_ == 1 || (dispatch & (dispatch - 1)) == 0) {
        std::uint64_t work = dispatch;
        while (work != 0) {
            const unsigned p = unsigned(__builtin_ctzll(work));
            work &= work - 1;
            pass_[p] = runPartition(p);
        }
        return;
    }

    std::fill(workerWork_.begin(), workerWork_.end(), 0);
    std::uint64_t work = dispatch;
    while (work != 0) {
        const unsigned p = unsigned(__builtin_ctzll(work));
        work &= work - 1;
        workerWork_[partWorker_[p]] |= std::uint64_t(1) << p;
    }
    bool remote = false;
    for (unsigned w = 1; w < numWorkers_; ++w) {
        if (workerWork_[w] != 0) {
            remote = true;
        }
    }
    if (!remote) {
        work = dispatch;
        while (work != 0) {
            const unsigned p = unsigned(__builtin_ctzll(work));
            work &= work - 1;
            pass_[p] = runPartition(p);
        }
        return;
    }
    for (unsigned w = 1; w < numWorkers_; ++w) {
        if (workerWork_[w] != 0) {
            Slot &s = *slots_[w];
            s.work = workerWork_[w];
            signal(s);
            ++sys_.bspHandshakes_;
        }
    }
    work = workerWork_[0];
    while (work != 0) {
        const unsigned p = unsigned(__builtin_ctzll(work));
        work &= work - 1;
        pass_[p] = runPartition(p);
    }
    for (unsigned w = 1; w < numWorkers_; ++w) {
        if (workerWork_[w] != 0) {
            awaitAck(*slots_[w]);
        }
    }
}

/**
 * One ParallelBsp cycle. Dispatch decision per partition: it must
 * evaluate if any member is due (scheduled wakeup), dirty (poked or
 * a declared input ticked), undeclared (the event kernel re-polls
 * those every executed cycle), or has a cached wakeup that has
 * arrived. A partition that is none of these is exactly a partition
 * the event kernel would pass over without ticking: its members get
 * the one-cycle fastForward() notification from the commit thread
 * and contribute their cached wakeups to the fast-forward target.
 */
System::CyclePass
System::executeCycleBsp()
{
    if (bsp_ == nullptr) {
        bsp_ = std::make_unique<ParallelKernel>(*this);
    }
    ParallelKernel &k = *bsp_;
    collectDue();

    const unsigned numParts = k.numPartitions();
    std::uint64_t dispatch = 0;
    for (unsigned p = 0; p < numParts; ++p) {
        const std::uint64_t m = k.partMask_[p];
        bool go = (dueMask_ & m) != 0 || (dirty_ & m) != 0 ||
                  (m & ~declared_) != 0;
        if (!go) {
            // All members declared and clean: caches are valid.
            for (const std::size_t i : k.partComps_[p]) {
                if (wake_[i] <= now_) {
                    go = true;
                    break;
                }
            }
        }
        if (go) {
            dispatch |= std::uint64_t(1) << p;
            k.dueLocal_[p] = dueMask_ & m;
            k.dirtyLocal_[p] = dirty_ & m;
            dueMask_ &= ~m;
            dirty_ &= ~m;
        }
    }

    ++bspSupersteps_;
    bspEvaluate_ = true;
    k.evaluate(dispatch);
    bspEvaluate_ = false;

    std::uint64_t tickedMask = 0;
    Tick next = maxTick;
    std::uint64_t staged = 0;
    for (unsigned p = 0; p < numParts; ++p) {
        if ((dispatch & (std::uint64_t(1) << p)) != 0) {
            tickedMask |= k.pass_[p].ticked;
            next = std::min(next, k.pass_[p].next);
            dirty_ |= k.pass_[p].newDirty;
            staged += k.pass_[p].stagedEvents;
        } else {
            for (const std::size_t i : k.partComps_[p]) {
                if (components_[i]->hasFastForward()) {
                    components_[i]->fastForward(now_, now_ + 1);
                }
                next = std::min(next, wake_[i]);
            }
        }
    }
    bspStagedEvents_ += staged;

    // Multi-cycle superstep: a cycle whose evaluate staged no
    // cross-partition traffic needed no commit round — every staging
    // ring is empty and the replay would be a no-op. The wakeup data
    // then proves the next cycle's dispatch set exactly (dirty bits,
    // cached wakeups, the scheduled queue), so as long as cycles keep
    // staging nothing, the kernel can run them inline on this (the
    // commit) thread, one micro-cycle per iteration, without a
    // fan-out/join handshake. The only cross-partition reads are of
    // published snapshots, and the only live state a micro-cycle
    // mutates belongs to the partitions it dispatched (cross-partition
    // entry points stage, which would have ended the batch) — so
    // republishing just the dispatched partitions at each micro-cycle
    // boundary keeps every snapshot read exact. The first micro-cycle
    // that stages ends the batch *at that cycle*, so its traffic
    // commits on time; external schedule() entries and the caller's
    // run limit clip the batch the same way. Bit-identity follows
    // because every skipped commit was a no-op, every skipped publish
    // is re-issued (partition-wise) before anyone reads it, and every
    // executed micro-cycle is the normal dispatch pass verbatim.
    // (evaluate() has joined all workers by now, so the inline loop
    // below races nothing.)
    if (dispatch != 0 && superstepMax_ != 1) {
        Tick horizon = batchLimit_;
        if (superstepMax_ != 0) {
            const Tick cap = now_ + superstepMax_;
            horizon = std::min(horizon, cap < now_ ? maxTick : cap);
        }
        std::uint64_t curDispatch = dispatch;
        std::uint64_t curTicked = tickedMask;
        bool batched = false;
        while (staged == 0 && curTicked != 0 && now_ + 1 < horizon &&
               (scheduled_.empty() ||
                scheduled_.top().first > now_ + 1) &&
               anyBusy()) {
            // Close the current cycle without a handshake: publish
            // the partitions that ran, notify, advance the clock.
            for (unsigned p = 0; p < numParts; ++p) {
                if ((curDispatch & (std::uint64_t(1) << p)) == 0) {
                    continue;
                }
                for (const std::size_t i : k.partComps_[p]) {
                    if (components_[i]->hasBspHooks()) {
                        components_[i]->bspPublish();
                    }
                }
            }
            const Tick cycle = now_;
            ++now_;
            ++executedCycles_;
            ++bspBatchedCycles_;
            if (observer_ != nullptr) {
                observer_->cycleExecuted(cycle, curTicked);
            }
            if (watchdogDue()) {
                watchdogFireIfExpired();
            }
            // The micro-cycle's dispatch decision is the superstep
            // decision minus collectDue(): the scheduled-queue guard
            // above proves no external wakeup lands this cycle.
            curDispatch = 0;
            for (unsigned p = 0; p < numParts; ++p) {
                const std::uint64_t m = k.partMask_[p];
                bool go = (dirty_ & m) != 0 || (m & ~declared_) != 0;
                if (!go) {
                    for (const std::size_t i : k.partComps_[p]) {
                        if (wake_[i] <= now_) {
                            go = true;
                            break;
                        }
                    }
                }
                if (go) {
                    curDispatch |= std::uint64_t(1) << p;
                    k.dueLocal_[p] = 0;
                    k.dirtyLocal_[p] = dirty_ & m;
                    dirty_ &= ~m;
                }
            }
            curTicked = 0;
            bspEvaluate_ = true;
            for (unsigned p = 0; p < numParts; ++p) {
                if ((curDispatch & (std::uint64_t(1) << p)) != 0) {
                    k.pass_[p] = k.runPartition(p);
                }
            }
            bspEvaluate_ = false;
            for (unsigned p = 0; p < numParts; ++p) {
                if ((curDispatch & (std::uint64_t(1) << p)) != 0) {
                    curTicked |= k.pass_[p].ticked;
                    dirty_ |= k.pass_[p].newDirty;
                    staged += k.pass_[p].stagedEvents;
                } else {
                    for (const std::size_t i : k.partComps_[p]) {
                        if (components_[i]->hasFastForward()) {
                            components_[i]->fastForward(now_, now_ + 1);
                        }
                    }
                }
            }
            bspStagedEvents_ += staged;
            batched = true;
        }
        if (batched) {
            tickedMask = curTicked;
            next = maxTick;
            for (unsigned p = 0; p < numParts; ++p) {
                if ((curDispatch & (std::uint64_t(1) << p)) != 0) {
                    next = std::min(next, k.pass_[p].next);
                } else {
                    for (const std::size_t i : k.partComps_[p]) {
                        next = std::min(next, wake_[i]);
                    }
                }
            }
        }
    }

    // Serial commit: drain staged inter-partition traffic in
    // registration order (reproducing the dense kernel's intra-cycle
    // order), then publish end-of-cycle snapshots. Pokes from commit
    // handlers land in the global dirty mask (bspPokeMask is null
    // here) and force fresh re-polls next cycle.
    for (auto *c : components_) {
        if (c->hasBspHooks()) {
            c->bspCommit(now_);
        }
    }
    for (auto *c : components_) {
        if (c->hasBspHooks()) {
            c->bspPublish();
        }
    }

    const Tick cycle = now_;
    ++now_;
    ++executedCycles_;
    if (observer_ != nullptr) {
        observer_->cycleExecuted(cycle, tickedMask);
    }
    if (!scheduled_.empty()) {
        next = std::min(next, scheduled_.top().first);
    }
    return {tickedMask != 0, next};
}

} // namespace hwgc
