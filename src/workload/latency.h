/**
 * @file
 * The query-latency harness behind Fig 1b.
 *
 * The paper measured lusearch request latencies at 10 QPS over a 10K
 * query run (1K warm-up discarded), "assuming that a request is
 * issued every 100ms and accounting for coordinated omission", and
 * showed that GC pauses make the tail two orders of magnitude longer
 * than the median. This harness reproduces that methodology as an
 * analytic queueing simulation: a fixed issue schedule, a single
 * serving thread, and stop-the-world pauses injected from *measured*
 * simulator pause durations. Issue times never depend on completion
 * times, which is precisely the coordinated-omission correction.
 */

#ifndef HWGC_WORKLOAD_LATENCY_H
#define HWGC_WORKLOAD_LATENCY_H

#include <vector>

#include "sim/random.h"

namespace hwgc::workload
{

/** Latency-run configuration (defaults follow the paper). */
struct LatencyParams
{
    double issueIntervalMs = 100.0; //!< 10 QPS.
    unsigned totalQueries = 10000;
    unsigned warmupQueries = 1000;  //!< Discarded from the results.
    double serviceMeanMs = 0.5;     //!< Base query service time
                                    //!< (scaled with the heaps).
    double serviceJitterMs = 0.4;   //!< Uniform jitter on top.
    std::uint64_t seed = 7;
};

/** One measured query. */
struct QuerySample
{
    double issueMs = 0.0;
    double latencyMs = 0.0;
    bool nearPause = false; //!< Query overlapped or queued behind a GC.
};

/** Result of a latency run. */
struct LatencyResult
{
    std::vector<QuerySample> samples; //!< Post-warm-up, issue order.

    /** Latency at quantile @p q (0..1) across the samples. */
    double percentile(double q) const;

    double meanMs() const;
    double maxMs() const;
};

/**
 * Runs the latency experiment.
 *
 * @param params Issue schedule and service-time model.
 * @param pause_durations_ms Measured GC pause lengths, cycled.
 * @param mutator_ms_between_gcs Application time between pauses.
 */
LatencyResult runLatencyExperiment(
    const LatencyParams &params,
    const std::vector<double> &pause_durations_ms,
    double mutator_ms_between_gcs);

/** One stop-the-world window on a measured timeline. */
struct PauseWindow
{
    double startMs = 0.0;
    double endMs = 0.0;
};

/**
 * Timeline variant of the latency experiment: instead of synthesising
 * a pause schedule from durations and a fixed mutator gap, the caller
 * supplies the *measured* windows — each pause pinned to the instant
 * the fleet actually stopped that tenant's world. The windows (which
 * must be non-overlapping and sorted by start) cover one measured
 * period of @p period_ms; the pattern is tiled periodically across
 * the whole issue horizon, so a short measured run drives millions of
 * analytic queries. @p period_ms <= 0 or an empty window list means
 * no pauses at all.
 */
LatencyResult runLatencyTimeline(const LatencyParams &params,
                                 const std::vector<PauseWindow> &windows,
                                 double period_ms);

} // namespace hwgc::workload

#endif // HWGC_WORKLOAD_LATENCY_H
