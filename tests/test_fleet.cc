/**
 * @file
 * Fleet-mode tests: a device array sharing one interconnect + DRAM,
 * time-multiplexed across tenant heaps, must be bit-identical across
 * the dense/event/parallel kernels, checkpoint/restore mid-service
 * without perturbing the run, honor per-tenant pacing budgets, and
 * dispatch in the order the configured policy defines. Also covers
 * the crash-hook registry the fleet leans on (one hook per session,
 * LIFO, all of them run).
 */

#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "driver/fleet.h"
#include "sim/logging.h"
#include "sim/telemetry.h"
#include "workload/dacapo.h"

namespace hwgc
{
namespace
{

/** Small tenants so the dense-kernel leg stays test-sized. */
std::vector<driver::TenantParams>
tinyTenants(unsigned n)
{
    std::vector<driver::TenantParams> tenants;
    for (unsigned t = 0; t < n; ++t) {
        driver::TenantParams p;
        p.name = "t" + std::to_string(t);
        p.graph = workload::smokeProfile().graph;
        p.graph.seed = 1000 + t;
        p.churnPerGC = 0.3;
        p.gcPeriodCycles = 200'000;
        // Alternate tight/loose deadlines so EDF has something to
        // reorder when requests queue.
        p.deadlineMs = (t % 2) == 0 ? 0.2 : 5.0;
        p.sloMs = 1.0;
        p.seed = 10 + t;
        p.latency.issueIntervalMs = 0.05;
        p.latency.totalQueries = 2000;
        p.latency.warmupQueries = 100;
        p.latency.serviceMeanMs = 0.01;
        p.latency.serviceJitterMs = 0.01;
        p.latency.seed = 77 + t;
        tenants.push_back(p);
    }
    return tenants;
}

driver::FleetConfig
tinyConfig(unsigned devices,
           driver::GcPolicy policy = driver::GcPolicy::Fifo)
{
    driver::FleetConfig config;
    config.devices = devices;
    config.policy = policy;
    config.gcsPerTenant = 2;
    return config;
}

/** Strips process-lifetime instance ids so exports compare equal. */
std::string
normalizeInstanceIds(std::string s)
{
    for (const char *key : {"system.hwgc", "system.fleet"}) {
        const std::size_t klen = std::strlen(key);
        std::size_t pos = 0;
        while ((pos = s.find(key, pos)) != std::string::npos) {
            std::size_t digits = pos + klen;
            std::size_t end = digits;
            while (end < s.size() &&
                   std::isdigit(static_cast<unsigned char>(s[end]))) {
                ++end;
            }
            s.replace(digits, end - digits, "#");
            pos = digits + 1;
        }
    }
    return s;
}

/** Everything a fleet run must reproduce bit-for-bit. */
struct FleetSig
{
    Tick finalCycle = 0;
    std::uint64_t totalGcs = 0;
    std::vector<std::uint64_t> perTenant; //!< gcs, stw, queue triples.
    std::string statsJson;

    bool
    operator==(const FleetSig &o) const
    {
        return finalCycle == o.finalCycle && totalGcs == o.totalGcs &&
            perTenant == o.perTenant && statsJson == o.statsJson;
    }
};

FleetSig
signatureOf(driver::FleetLab &lab)
{
    FleetSig sig;
    sig.finalCycle = lab.now();
    sig.totalGcs = lab.totalGcs();
    for (const auto &s : lab.stats()) {
        sig.perTenant.push_back(s.gcs);
        sig.perTenant.push_back(s.stwCycles);
        sig.perTenant.push_back(s.queueCycles);
    }
    std::ostringstream os;
    telemetry::StatsRegistry::global().exportJson(os, {});
    sig.statsJson = normalizeInstanceIds(os.str());
    return sig;
}

/** On mismatch, point at the first divergence instead of dumping. */
void
expectSameSig(const FleetSig &ref, const FleetSig &run)
{
    EXPECT_EQ(ref.finalCycle, run.finalCycle);
    EXPECT_EQ(ref.totalGcs, run.totalGcs);
    EXPECT_EQ(ref.perTenant, run.perTenant);
    if (ref.statsJson != run.statsJson) {
        std::size_t i = 0;
        while (i < ref.statsJson.size() && i < run.statsJson.size() &&
               ref.statsJson[i] == run.statsJson[i]) {
            ++i;
        }
        const std::size_t begin = i > 120 ? i - 120 : 0;
        ADD_FAILURE() << "stats JSON diverged at byte " << i
                      << "\n  ref: ..." << ref.statsJson.substr(begin, 200)
                      << "\n  run: ..." << run.statsJson.substr(begin, 200);
    }
}

FleetSig
runFleet(driver::FleetConfig config, KernelMode kernel,
         unsigned threads, unsigned tenants = 4)
{
    config.hwgc.kernel = kernel;
    config.hwgc.hostThreads = threads;
    telemetry::StatsRegistry::global().clearRetired();
    driver::FleetLab lab(config, tinyTenants(tenants));
    lab.run();
    return signatureOf(lab);
}

void
expectFleetMatrixAgrees(const driver::FleetConfig &config,
                        unsigned tenants = 4)
{
    const auto ref =
        runFleet(config, KernelMode::Dense, 0, tenants);
    EXPECT_GT(ref.totalGcs, 0u);
    struct Case
    {
        const char *name;
        KernelMode kernel;
        unsigned threads;
    };
    static constexpr Case cases[] = {
        {"event", KernelMode::Event, 0},
        {"parallel-1", KernelMode::ParallelBsp, 1},
        {"parallel-2", KernelMode::ParallelBsp, 2},
        {"parallel-7", KernelMode::ParallelBsp, 7},
    };
    for (const auto &c : cases) {
        SCOPED_TRACE(c.name);
        const auto run = runFleet(config, c.kernel, c.threads, tenants);
        expectSameSig(ref, run);
    }
}

// ---------------------------------------------------------------------
// Kernel matrix on fleet shapes.
// ---------------------------------------------------------------------

TEST(FleetMatrix, TwoDevicesFourTenantsSharedDram)
{
    expectFleetMatrixAgrees(tinyConfig(2));
}

TEST(FleetMatrix, DeadlinePolicyAgreesAcrossKernels)
{
    expectFleetMatrixAgrees(
        tinyConfig(2, driver::GcPolicy::Deadline));
}

TEST(FleetMatrix, PacedTenantsAgreeAcrossKernels)
{
    // Per-tenant bandwidth budgets route through the interconnect's
    // group token buckets; pacing must not break kernel equivalence.
    driver::FleetConfig config = tinyConfig(2);
    auto tenants = tinyTenants(4);
    tenants[0].paceBytesPerCycle = 1.0;
    tenants[2].paceBytesPerCycle = 0.5;

    // Each lab lives in its own scope: its stats groups must retire
    // before the next lab exports, or they leak into the comparison.
    FleetSig ref;
    {
        config.hwgc.kernel = KernelMode::Dense;
        telemetry::StatsRegistry::global().clearRetired();
        driver::FleetLab dense(config, tenants);
        dense.run();
        ref = signatureOf(dense);
    }
    config.hwgc.kernel = KernelMode::Event;
    telemetry::StatsRegistry::global().clearRetired();
    driver::FleetLab event(config, tenants);
    event.run();
    expectSameSig(ref, signatureOf(event));

    // Pacing must actually bite: the shared bus saw throttled grants.
    EXPECT_GT(event.bus().groupThrottledGrants(), 0u);
}

TEST(FleetMatrix, SingleDeviceManyTenantsSerializes)
{
    // One device, four tenants: every collection queues; the FIFO
    // order is still deterministic across kernels.
    expectFleetMatrixAgrees(tinyConfig(1));
}

// ---------------------------------------------------------------------
// Service-loop behaviour.
// ---------------------------------------------------------------------

TEST(Fleet, EveryTenantFinishesItsGcs)
{
    auto config = tinyConfig(2);
    config.hwgc.kernel = KernelMode::Event;
    driver::FleetLab lab(config, tinyTenants(4));
    lab.run();
    EXPECT_TRUE(lab.done());
    EXPECT_EQ(lab.totalGcs(), 8u);
    for (const auto &s : lab.stats()) {
        EXPECT_EQ(s.gcs, 2u);
        EXPECT_GT(s.stwCycles, 0u);
    }
}

TEST(Fleet, MeasureFillsPercentilesAndWindows)
{
    auto config = tinyConfig(2);
    config.hwgc.kernel = KernelMode::Event;
    driver::FleetLab lab(config, tinyTenants(2));
    lab.run();
    for (const auto &s : lab.measure()) {
        EXPECT_EQ(s.pausesMs.size(), 2u);
        EXPECT_FALSE(s.latency.samples.empty());
        EXPECT_GE(s.p99Ms, s.p50Ms);
        EXPECT_GE(s.p999Ms, s.p99Ms);
        EXPECT_GE(s.maxMs, s.p999Ms);
    }
}

TEST(Fleet, QueueCyclesAppearWhenDevicesAreScarce)
{
    // 1 device + short periods: tenants must wait for the device.
    auto config = tinyConfig(1);
    config.hwgc.kernel = KernelMode::Event;
    driver::FleetLab lab(config, tinyTenants(4));
    lab.run();
    std::uint64_t queued = 0;
    for (const auto &s : lab.stats()) {
        queued += s.queueCycles;
    }
    EXPECT_GT(queued, 0u);
}

TEST(FleetDeathTest, RejectsZeroDevicesAndZeroTenants)
{
    EXPECT_DEATH(driver::FleetLab(tinyConfig(0), tinyTenants(1)),
                 "at least one device");
    EXPECT_DEATH(driver::FleetLab(tinyConfig(1), {}),
                 "at least one tenant");
}

TEST(FleetDeathTest, CompressedRefsCapTheAddressSpace)
{
    auto config = tinyConfig(2);
    config.hwgc.compressRefs = true;
    EXPECT_DEATH(driver::FleetLab(config, tinyTenants(17)),
                 "32 GiB");
}

// ---------------------------------------------------------------------
// Scheduling policies.
// ---------------------------------------------------------------------

TEST(Scheduler, FifoPicksTheEarliestTrigger)
{
    const auto s = driver::makeScheduler(driver::GcPolicy::Fifo);
    const std::vector<driver::GcRequest> pending = {
        {0, 100, 200}, {1, 50, 900}, {2, 50, 800}};
    // Earliest trigger wins; ties break toward the lower tenant id.
    EXPECT_EQ(s->pick(pending, 1000), 1u);
    EXPECT_FALSE(s->concurrentMark());
}

TEST(Scheduler, DeadlinePicksTheTightestDeadline)
{
    const auto s = driver::makeScheduler(driver::GcPolicy::Deadline);
    const std::vector<driver::GcRequest> pending = {
        {0, 10, 900}, {1, 60, 200}, {2, 50, 200}};
    // Tightest deadline wins even though tenant 0 triggered first;
    // the deadline tie breaks toward the earlier trigger.
    EXPECT_EQ(s->pick(pending, 1000), 2u);
}

TEST(Scheduler, OverlapIsEdfWithConcurrentMark)
{
    const auto s =
        driver::makeScheduler(driver::GcPolicy::ConcurrentOverlap);
    EXPECT_TRUE(s->concurrentMark());
    EXPECT_STREQ(s->name(), "overlap");
    EXPECT_EQ(driver::parseGcPolicy("overlap"),
              driver::GcPolicy::ConcurrentOverlap);
}

TEST(Scheduler, ConcurrentMarkShrinksTheStwWindow)
{
    // Same dispatch order (EDF == overlap), but overlap's pause
    // windows start at the sweep handoff: strictly less STW.
    auto config = tinyConfig(2, driver::GcPolicy::Deadline);
    config.hwgc.kernel = KernelMode::Event;
    driver::FleetLab edf(config, tinyTenants(4));
    edf.run();
    config.policy = driver::GcPolicy::ConcurrentOverlap;
    driver::FleetLab overlap(config, tinyTenants(4));
    overlap.run();

    EXPECT_EQ(edf.now(), overlap.now());
    std::uint64_t edf_stw = 0, overlap_stw = 0;
    for (unsigned t = 0; t < 4; ++t) {
        edf_stw += edf.stats()[t].stwCycles;
        overlap_stw += overlap.stats()[t].stwCycles;
    }
    EXPECT_LT(overlap_stw, edf_stw);
}

// ---------------------------------------------------------------------
// Checkpoint/restore.
// ---------------------------------------------------------------------

FleetSig
measureSig(driver::FleetLab &lab)
{
    FleetSig sig = signatureOf(lab);
    for (const auto &s : lab.measure()) {
        // Fold the replayed percentiles in as raw bits.
        for (const double d : {s.p50Ms, s.p99Ms, s.p999Ms, s.maxMs}) {
            std::uint64_t bits;
            std::memcpy(&bits, &d, sizeof bits);
            sig.perTenant.push_back(bits);
        }
        sig.perTenant.push_back(s.sloViolations);
    }
    return sig;
}

TEST(FleetCheckpoint, MidServiceRestoreFinishesBitIdentically)
{
    const std::string path =
        ::testing::TempDir() + "fleet_ckpt_test.hwgc";
    auto config = tinyConfig(2);
    config.hwgc.kernel = KernelMode::Event;

    // Reference: an uninterrupted run. Each lab lives in its own
    // scope so its stats groups retire before the next lab exports.
    FleetSig ref;
    {
        telemetry::StatsRegistry::global().clearRetired();
        driver::FleetLab whole(config, tinyTenants(4));
        whole.run();
        ref = measureSig(whole);
    }

    // Split run: stop mid-service (some device is mid-phase at
    // 600k with these periods), checkpoint, and finish.
    Tick ckpt_at = 0;
    {
        telemetry::StatsRegistry::global().clearRetired();
        driver::FleetLab first(config, tinyTenants(4));
        first.runUntilCycle(600'000); // Rounds up to the quantum grid.
        ASSERT_FALSE(first.done());
        ckpt_at = first.now();
        ASSERT_TRUE(first.writeCheckpoint(path));
        first.run();
        expectSameSig(ref, measureSig(first));
    }

    // Restore into a fresh fleet and finish from the image.
    telemetry::StatsRegistry::global().clearRetired();
    driver::FleetLab restored(config, tinyTenants(4));
    restored.restoreCheckpoint(path);
    EXPECT_EQ(restored.now(), ckpt_at);
    restored.run();
    expectSameSig(ref, measureSig(restored));
    std::remove(path.c_str());
}

TEST(FleetCheckpoint, RestoreCrossesKernels)
{
    // Save under the event kernel, restore under dense: kernel mode
    // is a host knob, not simulated state.
    const std::string path =
        ::testing::TempDir() + "fleet_ckpt_kernel.hwgc";
    auto config = tinyConfig(2);
    config.hwgc.kernel = KernelMode::Event;
    driver::FleetLab event_ref(config, tinyTenants(2));
    event_ref.run();
    const Tick final_cycle = event_ref.now();

    driver::FleetLab saver(config, tinyTenants(2));
    saver.runUntilCycle(400'000);
    ASSERT_TRUE(saver.writeCheckpoint(path));

    config.hwgc.kernel = KernelMode::Dense;
    driver::FleetLab restored(config, tinyTenants(2));
    restored.restoreCheckpoint(path);
    restored.run();
    EXPECT_EQ(restored.now(), final_cycle);
    std::remove(path.c_str());
}

TEST(FleetCheckpointDeathTest, RejectsMismatchedConfiguration)
{
    const std::string path =
        ::testing::TempDir() + "fleet_ckpt_mismatch.hwgc";
    auto config = tinyConfig(2);
    config.hwgc.kernel = KernelMode::Event;
    driver::FleetLab saver(config, tinyTenants(2));
    saver.runUntilCycle(100'000);
    ASSERT_TRUE(saver.writeCheckpoint(path));

    auto other = tinyConfig(1); // Different device count.
    other.hwgc.kernel = KernelMode::Event;
    EXPECT_DEATH(
        {
            driver::FleetLab lab(other, tinyTenants(2));
            lab.restoreCheckpoint(path);
        },
        "different");
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// Crash-hook registry: one hook per session, LIFO, all of them run.
// ---------------------------------------------------------------------

void
printingHook(void *ctx)
{
    std::fprintf(stderr, "hook[%s];", static_cast<const char *>(ctx));
}

char dev0Ctx[] = "dev0";
char dev1Ctx[] = "dev1";
char liveCtx[] = "live";
char goneCtx[] = "gone";

TEST(CrashHookDeathTest, EveryHookRunsMostRecentFirst)
{
    // Two armed sessions; a panic must dump both, newest first (the
    // single-slot setCrashHook used to drop the first one). The hook
    // output is contiguous on stderr right after the panic line.
    EXPECT_DEATH(
        {
            addCrashHook(&printingHook, dev0Ctx);
            addCrashHook(&printingHook, dev1Ctx);
            panic("fleet boom");
        },
        "hook\\[dev1\\];hook\\[dev0\\];");
}

TEST(CrashHookDeathTest, RemovedHooksDoNotRun)
{
    // 'gone' was registered last; were removeCrashHook broken, LIFO
    // order would print hook[gone] between the panic line and
    // hook[live], and the newline-anchored match would fail.
    EXPECT_DEATH(
        {
            addCrashHook(&printingHook, liveCtx);
            const unsigned id = addCrashHook(&printingHook, goneCtx);
            removeCrashHook(id);
            panic("boom");
        },
        "boom\nhook\\[live\\];");
}

} // namespace
} // namespace hwgc
