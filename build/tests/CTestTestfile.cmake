# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_smoke[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_phys_mem[1]_include.cmake")
include("/root/repo/build/tests/test_dram[1]_include.cmake")
include("/root/repo/build/tests/test_interconnect[1]_include.cmake")
include("/root/repo/build/tests/test_cache[1]_include.cmake")
include("/root/repo/build/tests/test_vm[1]_include.cmake")
include("/root/repo/build/tests/test_object_model[1]_include.cmake")
include("/root/repo/build/tests/test_heap[1]_include.cmake")
include("/root/repo/build/tests/test_workload[1]_include.cmake")
include("/root/repo/build/tests/test_sw_collector[1]_include.cmake")
include("/root/repo/build/tests/test_mark_queue[1]_include.cmake")
include("/root/repo/build/tests/test_hwgc[1]_include.cmake")
include("/root/repo/build/tests/test_model[1]_include.cmake")
include("/root/repo/build/tests/test_lab[1]_include.cmake")
include("/root/repo/build/tests/test_concurrent[1]_include.cmake")
include("/root/repo/build/tests/test_superpages[1]_include.cmake")
include("/root/repo/build/tests/test_throttle[1]_include.cmake")
include("/root/repo/build/tests/test_edge_cases[1]_include.cmake")
include("/root/repo/build/tests/test_unit_components[1]_include.cmake")
include("/root/repo/build/tests/test_determinism[1]_include.cmake")
