# Empty dependencies file for test_mark_queue.
# This may be replaced when dependencies are built.
