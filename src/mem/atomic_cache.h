/**
 * @file
 * An atomic-mode (immediately-completing) cache for the CPU cost
 * model.
 *
 * The software collector is execution-driven: it performs functional
 * accesses directly against PhysMem and charges latency by calling
 * into this cache hierarchy (L1 -> L2 -> DRAM). Because the CPU is
 * the only agent during a stop-the-world pause, atomic charging is an
 * accurate model of an in-order core that blocks on load use. Fills
 * and dirty write-backs are charged against the memory device as
 * timing-only traffic so DRAM statistics (Fig 16's CPU bandwidth
 * trace) see exactly the line traffic a real cache would generate.
 */

#ifndef HWGC_MEM_ATOMIC_CACHE_H
#define HWGC_MEM_ATOMIC_CACHE_H

#include <string>

#include "mem/cache_tags.h"
#include "mem/mem_device.h"
#include "sim/stats.h"

namespace hwgc::mem
{

/** Atomic cache configuration. */
struct AtomicCacheParams
{
    std::uint64_t sizeBytes = 16 * 1024;
    unsigned assoc = 4;
    Tick hitLatency = 2;
};

/** Write-back, write-allocate, atomic-mode cache level. */
class AtomicCache
{
  public:
    /**
     * @param next The next cache level, or nullptr if this level
     *        misses straight to @p memory.
     * @param memory The memory device charged for fills/write-backs
     *        when @p next is nullptr.
     */
    AtomicCache(std::string name, const AtomicCacheParams &params,
                AtomicCache *next, MemDevice *memory);

    /**
     * Charges one access of @p size bytes at @p addr.
     * @return The access latency in cycles.
     */
    Tick access(Addr addr, unsigned size, bool is_write, Tick now);

    /** Invalidates all lines (e.g. between benchmark iterations). */
    void flush();

    /** @name Checkpointing (tag state + counters) @{ */
    void save(checkpoint::Serializer &ser) const;
    void restore(checkpoint::Deserializer &des);
    /** @} */

    void resetStats();

    /** @name Statistics @{ */
    std::uint64_t hits() const { return hits_.value(); }
    std::uint64_t misses() const { return misses_.value(); }
    std::uint64_t writebacks() const { return writebacks_.value(); }
    const std::string &name() const { return name_; }
    /** @} */

    /** Registers this cache's statistics into @p g (telemetry). */
    void
    addStats(stats::Group &g) const
    {
        g.add(&hits_);
        g.add(&misses_);
        g.add(&writebacks_);
    }

  private:
    /** Handles one line's worth of the access. */
    Tick accessLine(Addr line_addr, bool is_write, Tick now);

    /** Charges a 64-byte timing-only transfer at the next level down. */
    Tick chargeDownstream(Addr line_addr, bool is_write, Tick now);

    std::string name_;
    AtomicCacheParams params_;
    CacheTags tags_;
    AtomicCache *next_;
    MemDevice *memory_;

    stats::Scalar hits_{"hits"};
    stats::Scalar misses_{"misses"};
    stats::Scalar writebacks_{"writebacks"};
};

} // namespace hwgc::mem

#endif // HWGC_MEM_ATOMIC_CACHE_H
