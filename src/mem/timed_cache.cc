/**
 * @file
 * Timed multi-ported cache implementation.
 */

#include "timed_cache.h"

namespace hwgc::mem
{

namespace
{
/** Downstream tag marking a write-back (vs. an MSHR line fill). */
constexpr std::uint64_t writebackTag = ~0ULL;
} // namespace

/** One upstream port: a bounded request queue plus its responder. */
struct TimedCache::UpstreamPort : public MemPort
{
    UpstreamPort(TimedCache &owner, unsigned index,
                 MemResponder *responder, std::string label)
        : owner_(owner), index_(index), responder_(responder),
          label_(std::move(label))
    {
    }

    bool
    canSend(const MemRequest &) const override
    {
        return queue.size() < owner_.params_.portQueueDepth;
    }

    void
    send(MemRequest req, Tick now) override
    {
        panic_if(!canSend(req), "cache port '%s' overflow",
                 label_.c_str());
        panic_if(!validTransfer(req.paddr, req.size),
                 "cache port '%s': invalid transfer", label_.c_str());
        (void)now;
        owner_.pokeWakeup(); // A queued request needs a service tick.
        queue.push_back(req);
        ++numRequests;
    }

    TimedCache &owner_;
    unsigned index_;
    MemResponder *responder_;
    const Clocked *wakeOwner_ = nullptr;
    std::string label_;
    std::deque<MemRequest> queue;
    std::uint64_t numRequests = 0;
};

TimedCache::TimedCache(std::string name, const TimedCacheParams &params,
                       PhysMem &mem, Interconnect &bus)
    : Clocked(std::move(name)), params_(params), mem_(mem),
      tags_(params.sizeBytes, params.assoc),
      fillPort_(std::make_unique<BusPort>(bus, this,
                                          this->name() + ".fill")),
      mshrs_(params.mshrs)
{
}

TimedCache::~TimedCache() = default;

MemPort *
TimedCache::addPort(MemResponder *responder, std::string label)
{
    ports_.push_back(std::make_unique<UpstreamPort>(
        *this, unsigned(ports_.size()), responder, std::move(label)));
    return ports_.back().get();
}

void
TimedCache::setPortResponder(MemPort *port, MemResponder *responder)
{
    for (auto &p : ports_) {
        if (p.get() == port) {
            p->responder_ = responder;
            return;
        }
    }
    panic("setPortResponder: unknown port");
}

void
TimedCache::setPortOwner(MemPort *port, const Clocked *owner)
{
    for (auto &p : ports_) {
        if (p.get() == port) {
            p->wakeOwner_ = owner;
            return;
        }
    }
    panic("setPortOwner: unknown port");
}

void
TimedCache::complete(const MemRequest &req, unsigned port, Tick now)
{
    MemResponse resp;
    resp.req = req;
    resp.completed = now;
    mem_.execute(req, resp.rdata);
    dueResponses_.push_back({resp, port, now + params_.hitLatency});
}

void
TimedCache::installLine(Addr line_addr)
{
    const CacheTags::Victim victim = tags_.insert(line_addr);
    if (victim.valid && victim.dirty) {
        panic_if(writebackQueue_.size() >= params_.writebackDepth,
                 "write-back buffer overflow");
        writebackQueue_.push_back(victim.lineAddr);
        ++writebacks_;
    }
}

void
TimedCache::onResponse(const MemResponse &resp, Tick now)
{
    pokeWakeup();
    if (resp.req.tag == writebackTag) {
        panic_if(outstandingWritebacks_ == 0, "writeback underflow");
        --outstandingWritebacks_;
        return;
    }
    panic_if(resp.req.tag >= mshrs_.size(), "bad MSHR tag");
    Mshr &mshr = mshrs_[resp.req.tag];
    panic_if(!mshr.valid, "fill for invalid MSHR");
    installLine(mshr.lineAddr);
    for (const auto &[port, req] : mshr.targets) {
        if (req.isWrite() || req.op == Op::FetchOr) {
            tags_.markDirty(req.paddr);
        }
        complete(req, port, now);
    }
    mshr.valid = false;
    mshr.targets.clear();
}

void
TimedCache::tick(Tick now)
{
    // Deliver due upstream responses.
    while (!dueResponses_.empty() &&
           dueResponses_.front().readyAt <= now) {
        const DueResponse due = dueResponses_.front();
        dueResponses_.pop_front();
        MemResponder *r = ports_[due.port]->responder_;
        if (r != nullptr) {
            r->onResponse(due.resp, now);
        }
    }

    // Drain one write-back if the downstream port has room.
    if (!writebackQueue_.empty()) {
        MemRequest wb;
        wb.paddr = writebackQueue_.front();
        wb.size = lineBytes;
        wb.op = Op::Write;
        wb.tag = writebackTag;
        wb.timingOnly = true;
        if (fillPort_->canSend(wb)) {
            fillPort_->send(wb, now);
            writebackQueue_.pop_front();
            ++outstandingWritebacks_;
        }
    }

    // One lookup per cycle, round-robin across upstream ports.
    const unsigned n = unsigned(ports_.size());
    for (unsigned i = 0; i < n; ++i) {
        const unsigned idx = (rrNext_ + i) % n;
        UpstreamPort &port = *ports_[idx];
        if (port.queue.empty()) {
            continue;
        }
        const MemRequest req = port.queue.front();
        const Addr line = alignDown(req.paddr, lineBytes);

        if (tags_.access(req.paddr)) {
            ++hits_;
            if (req.isWrite() || req.op == Op::FetchOr) {
                tags_.markDirty(req.paddr);
            }
            complete(req, idx, now);
            port.queue.pop_front();
            if (port.wakeOwner_ != nullptr) {
                pokeWakeup(*port.wakeOwner_); // canSend() just rose.
            }
            rrNext_ = (idx + 1) % n;
            break;
        }

        // Miss: merge into an existing MSHR for this line if any.
        Mshr *match = nullptr;
        Mshr *free_slot = nullptr;
        for (auto &m : mshrs_) {
            if (m.valid && m.lineAddr == line) {
                match = &m;
                break;
            }
            if (!m.valid && free_slot == nullptr) {
                free_slot = &m;
            }
        }
        if (match != nullptr) {
            match->targets.emplace_back(idx, req);
            port.queue.pop_front();
            if (port.wakeOwner_ != nullptr) {
                pokeWakeup(*port.wakeOwner_); // canSend() just rose.
            }
            rrNext_ = (idx + 1) % n;
            break;
        }
        if (free_slot == nullptr) {
            continue; // All MSHRs busy: this port stalls.
        }
        MemRequest fill;
        fill.paddr = line;
        fill.size = lineBytes;
        fill.op = Op::Read;
        fill.tag = std::uint64_t(free_slot - mshrs_.data());
        fill.timingOnly = true;
        if (!fillPort_->canSend(fill)) {
            continue; // Downstream full: stall.
        }
        ++misses_;
        free_slot->valid = true;
        free_slot->lineAddr = line;
        free_slot->targets.emplace_back(idx, req);
        fillPort_->send(fill, now);
        port.queue.pop_front();
        if (port.wakeOwner_ != nullptr) {
            pokeWakeup(*port.wakeOwner_); // canSend() just rose.
        }
        rrNext_ = (idx + 1) % n;
        break;
    }
}

Tick
TimedCache::nextWakeup(Tick now) const
{
    // Queued lookups and write-back drains retry every cycle (they
    // may be stalled on MSHRs or downstream room, which only a tick
    // can re-check).
    if (!writebackQueue_.empty()) {
        return now;
    }
    for (const auto &p : ports_) {
        if (!p->queue.empty()) {
            return now;
        }
    }
    if (!dueResponses_.empty()) {
        return dueResponses_.front().readyAt;
    }
    // Only in-flight fills/write-backs remain; progress arrives via
    // onResponse() and is picked up on the following re-poll.
    return maxTick;
}

bool
TimedCache::busy() const
{
    if (!dueResponses_.empty() || !writebackQueue_.empty() ||
        outstandingWritebacks_ != 0) {
        return true;
    }
    for (const auto &m : mshrs_) {
        if (m.valid) {
            return true;
        }
    }
    for (const auto &p : ports_) {
        if (!p->queue.empty()) {
            return true;
        }
    }
    return false;
}

CycleClass
TimedCache::cycleClass(Tick now) const
{
    (void)now;
    if (!busy()) {
        return CycleClass::Idle;
    }
    bool queued = !writebackQueue_.empty();
    for (const auto &p : ports_) {
        if (!p->queue.empty()) {
            queued = true;
            break;
        }
    }
    if (queued) {
        // Whether the head would hit cannot be probed here —
        // tags_.access() updates recency state — so queued work is
        // classified by what could block a miss.
        bool mshr_free = false;
        for (const auto &m : mshrs_) {
            if (!m.valid) {
                mshr_free = true;
                break;
            }
        }
        if (!mshr_free) {
            return CycleClass::StallDram; // Every MSHR awaits a fill.
        }
        MemRequest probe;
        probe.size = lineBytes;
        return fillPort_->canSend(probe) ? CycleClass::Busy
                                         : CycleClass::StallBus;
    }
    if (!dueResponses_.empty()) {
        return CycleClass::Busy; // Hit-latency pipeline delivering.
    }
    return CycleClass::StallDram; // Only fills/write-backs in flight.
}

void
TimedCache::save(checkpoint::Serializer &ser) const
{
    tags_.save(ser);
    ser.putU64(ports_.size());
    for (const auto &p : ports_) {
        ser.putU64(p->queue.size());
        for (const auto &req : p->queue) {
            saveRequest(ser, req);
        }
        ser.putU64(p->numRequests);
    }
    ser.putU64(mshrs_.size());
    for (const auto &m : mshrs_) {
        ser.putBool(m.valid);
        ser.putU64(m.lineAddr);
        ser.putU64(m.targets.size());
        for (const auto &[port, req] : m.targets) {
            ser.putU64(port);
            saveRequest(ser, req);
        }
    }
    ser.putU64(writebackQueue_.size());
    for (const Addr a : writebackQueue_) {
        ser.putU64(a);
    }
    ser.putU64(dueResponses_.size());
    for (const auto &due : dueResponses_) {
        saveResponse(ser, due.resp);
        ser.putU64(due.port);
        ser.putU64(due.readyAt);
    }
    ser.putU64(rrNext_);
    ser.putU64(outstandingWritebacks_);
    checkpoint::putStat(ser, hits_);
    checkpoint::putStat(ser, misses_);
    checkpoint::putStat(ser, writebacks_);
}

void
TimedCache::restore(checkpoint::Deserializer &des)
{
    tags_.restore(des);
    const std::uint64_t num_ports = des.getU64();
    fatal_if(num_ports != ports_.size(),
             "checkpoint '%s': cache '%s' has %llu ports but this "
             "configuration has %zu — topologies differ",
             des.origin().c_str(), name().c_str(),
             (unsigned long long)num_ports, ports_.size());
    for (auto &p : ports_) {
        p->queue.clear();
        const std::uint64_t depth = des.getU64();
        for (std::uint64_t i = 0; i < depth; ++i) {
            p->queue.push_back(restoreRequest(des));
        }
        p->numRequests = des.getU64();
    }
    const std::uint64_t num_mshrs = des.getU64();
    fatal_if(num_mshrs != mshrs_.size(),
             "checkpoint '%s': cache '%s' has %llu MSHRs but this "
             "configuration has %zu — configurations differ",
             des.origin().c_str(), name().c_str(),
             (unsigned long long)num_mshrs, mshrs_.size());
    for (auto &m : mshrs_) {
        m.valid = des.getBool();
        m.lineAddr = des.getU64();
        m.targets.clear();
        const std::uint64_t num_targets = des.getU64();
        for (std::uint64_t i = 0; i < num_targets; ++i) {
            const unsigned port = unsigned(des.getU64());
            m.targets.emplace_back(port, restoreRequest(des));
        }
    }
    writebackQueue_.clear();
    const std::uint64_t num_wb = des.getU64();
    for (std::uint64_t i = 0; i < num_wb; ++i) {
        writebackQueue_.push_back(des.getU64());
    }
    dueResponses_.clear();
    const std::uint64_t num_due = des.getU64();
    for (std::uint64_t i = 0; i < num_due; ++i) {
        DueResponse due;
        due.resp = restoreResponse(des);
        due.port = unsigned(des.getU64());
        due.readyAt = des.getU64();
        dueResponses_.push_back(due);
    }
    rrNext_ = unsigned(des.getU64());
    outstandingWritebacks_ = unsigned(des.getU64());
    checkpoint::getStat(des, hits_);
    checkpoint::getStat(des, misses_);
    checkpoint::getStat(des, writebacks_);
}

void
TimedCache::resetStats()
{
    hits_.reset();
    misses_.reset();
    writebacks_.reset();
    for (auto &p : ports_) {
        p->numRequests = 0;
    }
}

std::uint64_t
TimedCache::portRequests(unsigned port) const
{
    return ports_.at(port)->numRequests;
}

const std::string &
TimedCache::portLabel(unsigned port) const
{
    return ports_.at(port)->label_;
}

} // namespace hwgc::mem
