/**
 * @file
 * Scenario: pause-free collection (paper §IV-D). Runs the traversal
 * unit *concurrently* with a mutating application: the mutator
 * applies the paper's write barrier (overwritten references appended
 * to the root region, which the unit keeps streaming) and allocates
 * new objects black. Shows the snapshot invariant holding, the
 * barrier traffic cost, and the floating garbage the snapshot
 * retains — the concurrent-GC trade-offs of paper §III-B.
 *
 *   $ ./build/examples/concurrent_gc [benchmark]
 */

#include <cstdio>
#include <string>

#include "driver/concurrent.h"
#include "gc/verifier.h"
#include "workload/dacapo.h"

int
main(int argc, char **argv)
{
    hwgc::telemetry::Session session(argc, argv);
    using namespace hwgc;
    const std::string bench = argc > 1 ? argv[1] : "avrora";
    const auto profile = workload::dacapoProfile(bench);

    mem::PhysMem phys_mem;
    runtime::Heap heap(phys_mem);
    workload::GraphBuilder builder(heap, profile.graph);
    builder.build();
    heap.clearAllMarks();

    core::HwgcDevice device(phys_mem, heap.pageTable(),
                            core::HwgcConfig{});

    driver::ConcurrentParams params;
    params.totalMutations = 4000;
    params.seed = 2026;

    std::printf("concurrent mark on '%s' (%llu objects), mutator "
                "running...\n",
                bench.c_str(),
                (unsigned long long)heap.liveObjects());
    driver::ConcurrentMarkLab lab(heap, builder, device, params);
    const auto result = lab.run();

    std::printf("  mark ran %.3f ms concurrent with %llu mutations\n",
                double(result.markCycles) / 1e6,
                (unsigned long long)result.mutations);
    std::printf("  barrier log entries: %llu (%.2f per mutation)\n",
                (unsigned long long)result.barrierEntries,
                double(result.barrierEntries) /
                    double(result.mutations));
    std::printf("  snapshot: %llu reachable at start, %llu lost "
                "(must be 0)\n",
                (unsigned long long)result.startReachable,
                (unsigned long long)result.lostObjects);
    std::printf("  marked at end: %llu (floating garbage: %llu, "
                "reclaimed next cycle)\n",
                (unsigned long long)result.markedAtEnd,
                (unsigned long long)result.floatingGarbage);

    // The sweep can also run while mutators allocate black; here we
    // run it to completion and verify the heap.
    const auto sweep = device.runSweep();
    heap.onAfterSweep();
    const auto swept = gc::verifyFreeLists(heap);
    std::printf("  sweep: %.3f ms, %llu cells freed, free lists %s\n",
                double(sweep.cycles) / 1e6,
                (unsigned long long)sweep.cellsFreed,
                swept.ok ? "OK" : swept.error.c_str());

    std::printf("\nmutator-visible pause: none (mark and sweep ran "
                "concurrently);\n"
                "a stop-the-world run of the same heap pauses for the "
                "full GC time.\n");
    return result.lostObjects == 0 && swept.ok ? 0 : 1;
}
