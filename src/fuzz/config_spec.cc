/**
 * @file
 * Config-spec parsing and the standard fuzz grids.
 */

#include "config_spec.h"

#include <cstdlib>
#include <sstream>

namespace hwgc::fuzz
{

namespace
{

bool
parseUnsigned(const std::string &value, unsigned &out)
{
    if (value.empty()) {
        return false;
    }
    char *end = nullptr;
    const unsigned long v = std::strtoul(value.c_str(), &end, 10);
    if (end == nullptr || *end != '\0') {
        return false;
    }
    out = unsigned(v);
    return true;
}

bool
parseDouble(const std::string &value, double &out)
{
    if (value.empty()) {
        return false;
    }
    char *end = nullptr;
    const double v = std::strtod(value.c_str(), &end);
    if (end == nullptr || *end != '\0') {
        return false;
    }
    out = v;
    return true;
}

} // namespace

bool
applyConfigSpec(core::HwgcConfig &config, const std::string &spec,
                std::string *err)
{
    const auto fail = [err](const std::string &what) {
        if (err != nullptr) {
            *err = what;
        }
        return false;
    };

    std::istringstream is(spec);
    std::string item;
    while (std::getline(is, item, ',')) {
        if (item.empty()) {
            continue;
        }
        const std::size_t eq = item.find('=');
        if (eq == std::string::npos) {
            return fail("config spec item '" + item + "' has no '='");
        }
        const std::string key = item.substr(0, eq);
        const std::string value = item.substr(eq + 1);

        unsigned u = 0;
        double d = 0.0;
        if (key == "mq" && parseUnsigned(value, u)) {
            config.markQueueEntries = u;
        } else if (key == "spillq" && parseUnsigned(value, u)) {
            config.spillQueueEntries = u;
        } else if (key == "throttle" && parseUnsigned(value, u)) {
            config.spillThrottle = u;
        } else if (key == "comp" && parseUnsigned(value, u)) {
            config.compressRefs = u != 0;
        } else if (key == "slots" && parseUnsigned(value, u)) {
            config.markerSlots = u;
        } else if (key == "waiters" && parseUnsigned(value, u)) {
            config.markerWalkWaiters = u;
        } else if (key == "mbc" && parseUnsigned(value, u)) {
            config.markBitCacheEntries = u;
        } else if (key == "tq" && parseUnsigned(value, u)) {
            config.tracerQueueEntries = u;
        } else if (key == "pend" && parseUnsigned(value, u)) {
            config.tracerPendingRefs = u;
        } else if (key == "utlb" && parseUnsigned(value, u)) {
            config.unitTlbEntries = u;
        } else if (key == "sweep" && parseUnsigned(value, u)) {
            config.numSweepers = u;
        } else if (key == "stlb" && parseUnsigned(value, u)) {
            config.sweeperTlbEntries = u;
        } else if (key == "shared" && parseUnsigned(value, u)) {
            config.sharedCache = u != 0;
        } else if (key == "mshrs" && parseUnsigned(value, u)) {
            config.sharedCacheParams.mshrs = u;
        } else if (key == "ptwmshrs" && parseUnsigned(value, u)) {
            config.ptwCacheParams.mshrs = u;
        } else if (key == "bw" && parseDouble(value, d)) {
            config.bus.throttleBytesPerCycle = d;
        } else if (key == "threads" && parseUnsigned(value, u)) {
            config.hostThreads = u;
        } else if (key == "devices" && parseUnsigned(value, u) &&
                   u != 0) {
            config.devices = u;
        } else if (key == "mem") {
            if (value == "ddr3") {
                config.memModel = core::MemModel::Ddr3;
            } else if (value == "ideal") {
                config.memModel = core::MemModel::Ideal;
            } else {
                return fail("unknown mem model '" + value + "'");
            }
        } else if (key == "kernel") {
            if (value == "dense") {
                config.kernel = KernelMode::Dense;
            } else if (value == "event") {
                config.kernel = KernelMode::Event;
            } else if (value == "parallel") {
                config.kernel = KernelMode::ParallelBsp;
            } else {
                return fail("unknown kernel '" + value + "'");
            }
        } else {
            return fail("bad config spec item '" + item + "'");
        }
    }
    return true;
}

std::vector<ConfigPoint>
quickGrid()
{
    return {
        {"baseline-ideal", "mem=ideal"},
        {"tinyqueue-ideal",
         "mem=ideal,mq=32,spillq=16,throttle=12,utlb=8"},
    };
}

std::vector<ConfigPoint>
fullGrid()
{
    std::vector<ConfigPoint> grid = quickGrid();
    grid.push_back({"baseline-ddr3", ""});
    grid.push_back({"lowbw-ddr3", "bw=2.0"});
    grid.push_back({"starved-mshrs",
                    "shared=1,mshrs=1,ptwmshrs=1,mem=ideal"});
    grid.push_back({"shared-cache", "shared=1"});
    grid.push_back({"compressed",
                    "comp=1,mbc=1024,mem=ideal"});
    // Fleet shape: two devices behind one shared bus + memory, the
    // schedule's collections alternating across the array. Exercises
    // the multi-client arbitration and device retargeting paths the
    // single-device points cannot reach.
    grid.push_back({"fleet2-ideal", "devices=2,mem=ideal"});
    return grid;
}

} // namespace hwgc::fuzz
