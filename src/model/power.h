/**
 * @file
 * Power and energy model (paper §VI-C / Fig 23).
 *
 * The paper collected DRAM-level counters over the GC pauses of
 * Fig 16 and ran them through Micron's DDR3 power-calculator
 * spreadsheet, and took core/unit power from Design Compiler. This
 * model implements the standard Micron methodology: background power
 * plus activate energy per ACT command plus read/write burst energy
 * per byte, combined with static compute-side power, giving total
 * energy = power x pause time. The headline behaviour reproduced:
 * the unit's DRAM *power* is higher (it sustains more bandwidth) but
 * its total *energy* is lower because the pause is much shorter.
 */

#ifndef HWGC_MODEL_POWER_H
#define HWGC_MODEL_POWER_H

#include "core/hwgc_config.h"
#include "model/area.h"
#include "sim/types.h"

namespace hwgc::model
{

/** DRAM activity counters over one measured interval. */
struct DramActivity
{
    std::uint64_t reads = 0;     //!< Read requests.
    std::uint64_t writes = 0;    //!< Write requests.
    std::uint64_t bytes = 0;     //!< Total bytes moved.
    std::uint64_t activates = 0; //!< Row activations.
    Tick cycles = 0;             //!< Interval length (1 GHz cycles).
};

/** Calibration constants (DDR3 datasheet flavoured). */
struct PowerParams
{
    /** DRAM background power (idle rank, CKE high). */
    double dramBackgroundMw = 160.0;

    /** Energy per row activate+precharge pair. */
    double activateNj = 3.8;

    /** Read/write burst energy per byte moved (I/O + DRAM core;
     *  traffic is counted at BL8/line granularity by the Dram model,
     *  so sub-line requests pay for the full burst). */
    double readPjPerByte = 230.0;
    double writePjPerByte = 260.0;

    /** Rocket core power while running GC code (DC estimate). */
    double rocketCoreMw = 225.0;

    /** GC unit dynamic+static power per mm^2 (DC estimate; the unit
     *  is small and datapath-dominated). */
    double unitMwPerMm2 = 55.0;
};

/** An energy accounting result. */
struct EnergyReport
{
    double seconds = 0.0;
    double computePowerMw = 0.0; //!< Core or unit.
    double dramPowerMw = 0.0;
    double totalPowerMw() const { return computePowerMw + dramPowerMw; }
    double energyMj() const { return totalPowerMw() * seconds; }
};

/** The power/energy model. */
class PowerModel
{
  public:
    explicit PowerModel(const PowerParams &params = {},
                        const AreaParams &area = {})
        : params_(params), area_(area)
    {
    }

    /** Average DRAM power over an activity interval (mW). */
    double dramPowerMw(const DramActivity &activity) const;

    /** The GC unit's compute power for a configuration (mW). */
    double unitPowerMw(const core::HwgcConfig &config) const;

    /** Energy of a GC interval executed on the Rocket core. */
    EnergyReport cpuEnergy(const DramActivity &activity) const;

    /** Energy of a GC interval executed on the unit. */
    EnergyReport hwgcEnergy(const DramActivity &activity,
                            const core::HwgcConfig &config) const;

    const PowerParams &params() const { return params_; }

  private:
    PowerParams params_;
    AreaModel area_;
};

} // namespace hwgc::model

#endif // HWGC_MODEL_POWER_H
