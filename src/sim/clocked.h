/**
 * @file
 * The simulation kernel: clocked components and the System driver.
 *
 * All timing models are Clocked components registered with a System.
 * One cycle of simulated time is one core clock at 1 GHz (paper
 * Table I). The System runs in one of two kernel modes:
 *
 *  - Dense: the reference kernel. Every component is ticked on every
 *    cycle, exactly like real hardware clocks every flop.
 *  - Event: the fast kernel. Each component publishes the earliest
 *    cycle at which its tick() could have an observable effect
 *    (nextWakeup), the System ticks only the components that are due,
 *    and when nothing is due it fast-forwards the clock straight to
 *    the earliest pending wakeup instead of stepping through the gap.
 *
 * The two modes are cycle-exact equivalents as long as every
 * component honours the wakeup contract documented on
 * Clocked::nextWakeup (see DESIGN.md, "Simulation kernel").
 */

#ifndef HWGC_SIM_CLOCKED_H
#define HWGC_SIM_CLOCKED_H

#include <algorithm>
#include <functional>
#include <queue>
#include <string>
#include <utility>
#include <vector>

#include "sim/logging.h"
#include "sim/types.h"

namespace hwgc
{

class System;

/** Kernel selection for System (see file header). */
enum class KernelMode
{
    Dense, //!< Tick every component every cycle (reference kernel).
    Event, //!< Tick only due components; fast-forward idle gaps.
};

/**
 * Passive observer of the kernel's execution, used by the telemetry
 * layer to derive per-component activity spans and to pace interval
 * sampling off the wakeup machinery. Observers only *read* simulator
 * state: attaching one must never change simulated cycles or
 * statistics (tests/test_telemetry.cc enforces this).
 */
class KernelObserver
{
  public:
    virtual ~KernelObserver() = default;

    /**
     * One executed cycle finished. Bit i of @p active_mask is set if
     * component i (in registration order) ticked this cycle (event
     * kernel) or reported busy() (dense kernel).
     */
    virtual void cycleExecuted(Tick now, std::uint64_t active_mask) = 0;

    /** Cycles [from, to) were fast-forwarded with nothing ticking. */
    virtual void fastForwarded(Tick from, Tick to) = 0;
};

/** Base class for anything evaluated once per clock cycle. */
class Clocked
{
    friend class System;

  public:
    /** @param name A unique, human-readable instance name. */
    explicit Clocked(std::string name) : name_(std::move(name)) {}
    virtual ~Clocked() = default;

    Clocked(const Clocked &) = delete;
    Clocked &operator=(const Clocked &) = delete;

    /** Evaluates one clock cycle at time @p now. */
    virtual void tick(Tick now) = 0;

    /**
     * Reports whether the component could still make progress.
     * runUntilIdle() stops once every component is idle for a cycle.
     */
    virtual bool busy() const = 0;

    /**
     * Wakeup contract of the event kernel: the earliest cycle >= @p now
     * at which tick() might have any observable effect — state changes,
     * calls into other components, or statistics updates. Cycles before
     * that wakeup may be skipped without ticking this component, so an
     * implementation must be *conservative*: returning a cycle that
     * turns out to be a no-op only costs time, but returning one past
     * the first effective tick diverges from the dense kernel.
     *
     * Return @p now (not now + 1) to be ticked on every cycle, and
     * maxTick when only an external call (onResponse, a new request)
     * can create work — the System re-polls every component after each
     * cycle it actually executes, so cross-component pokes are seen.
     *
     * The default is safe for any component: tick every cycle while
     * busy(), never while idle.
     */
    virtual Tick
    nextWakeup(Tick now) const
    {
        return busy() ? now : maxTick;
    }

    /**
     * Notification that the event kernel let cycles [from, to) elapse
     * without ticking this component (either a fast-forwarded gap or
     * a single executed cycle on which this component was not due).
     * Only components with per-elapsed-cycle accounting (e.g. the
     * interconnect's cycle counter) need to override this; it must
     * reproduce exactly what the skipped no-op ticks would have done
     * and nothing more. An overrider MUST also set hasFastForward_
     * in its constructor — the kernel skips the virtual call for
     * everyone else (the A/B equivalence tests catch a forgotten
     * flag as a stats divergence).
     */
    virtual void fastForward(Tick from, Tick to)
    {
        (void)from;
        (void)to;
    }

    /** Whether fastForward() is overridden and must be called. */
    bool hasFastForward() const { return hasFastForward_; }

    const std::string &name() const { return name_; }

  protected:
    /**
     * Marks this component's cached wakeup stale so the event kernel
     * re-polls nextWakeup() on the next cycle it evaluates (see
     * System::declareWakeupInputs). A component with declared wakeup
     * inputs MUST call this from every externally callable method
     * that mutates wakeup-relevant state — onResponse, queue
     * enqueues/dequeues, walk callbacks — since those run inside
     * *other* components' ticks, where the kernel cannot see them.
     * Harmless (and a no-op) outside a System or in dense mode.
     */
    void pokeWakeup();

    /**
     * Invalidates *another* component's cached wakeup. For producers
     * that know exactly which consumer a state change can unblock
     * (e.g. the bus freeing one client's queue slot), this is a
     * precise alternative to a declareWakeupInputs() edge, which
     * would re-poll the consumer after *every* tick of the producer.
     */
    void pokeWakeup(const Clocked &other);

    /** Set by subclasses that override fastForward() (see above). */
    bool hasFastForward_ = false;

  private:
    std::string name_;
    System *system_ = nullptr;
    std::size_t sysIndex_ = 0;
};

/**
 * Owns the global clock and the component list. Components are
 * registered by raw pointer and must outlive the System (they are
 * typically members of the owning simulation object).
 */
class System
{
  public:
    System() = default;

    /** Registers a component; evaluation order is registration order. */
    void
    add(Clocked *c)
    {
        panic_if(c == nullptr, "System::add(nullptr)");
        panic_if(components_.size() >= 64,
                 "System supports at most 64 components");
        panic_if(c->system_ != nullptr,
                 "component '%s' already registered", c->name().c_str());
        c->system_ = this;
        c->sysIndex_ = components_.size();
        components_.push_back(c);
        due_.push_back(false);
        wake_.push_back(maxTick);
        succ_.push_back(0);
    }

    /**
     * Opts @p dst into wakeup caching. By default the event kernel
     * re-polls every component's nextWakeup() on every cycle it
     * executes, because any tick anywhere might have created work for
     * it. A component whose wakeup can only drop when (a) one of the
     * listed @p srcs ticks, or (b) one of its own entry points runs
     * (which must then call pokeWakeup()), can declare that here: its
     * cached wakeup is then reused until one of those events — or its
     * own tick — invalidates it. Transitions that *raise* the wakeup
     * never need declaring; acting on a stale-low value just costs a
     * no-op tick or poll, exactly like a conservative nextWakeup().
     */
    void
    declareWakeupInputs(Clocked *dst,
                        std::initializer_list<Clocked *> srcs)
    {
        panic_if(dst == nullptr || dst->system_ != this,
                 "declareWakeupInputs for unregistered component");
        declared_ |= std::uint64_t(1) << dst->sysIndex_;
        for (Clocked *src : srcs) {
            panic_if(src == nullptr || src->system_ != this,
                     "wakeup input not registered");
            succ_[src->sysIndex_] |= std::uint64_t(1) << dst->sysIndex_;
        }
    }

    /** Invalidates @p c's cached wakeup (see Clocked::pokeWakeup). */
    void
    poke(const Clocked &c)
    {
        dirty_ |= std::uint64_t(1) << c.sysIndex_;
    }

    /** Selects the kernel (callers may switch between runs). */
    void setMode(KernelMode mode) { mode_ = mode; }
    KernelMode mode() const { return mode_; }

    /**
     * Attaches a passive execution observer (nullptr detaches). The
     * observer is consulted only on cycles the kernel actually
     * executes plus fast-forward jumps, so a detached observer costs
     * one pointer compare per executed cycle and an attached one
     * cannot perturb simulated behaviour.
     */
    void setObserver(KernelObserver *observer) { observer_ = observer; }
    KernelObserver *observer() const { return observer_; }

    /** Registered components, in evaluation order. */
    const std::vector<Clocked *> &components() const
    {
        return components_;
    }

    /** Current simulated time in cycles. */
    Tick now() const { return now_; }

    /**
     * Cycles the event kernel actually evaluated (vs. fast-forwarded
     * over). The ratio to now() is the kernel's skip rate.
     */
    std::uint64_t executedCycles() const { return executedCycles_; }

    /**
     * Requests an explicit tick of @p c at cycle @p at, in addition to
     * whatever its nextWakeup() reports. A wakeup scheduled in the
     * past or at the current cycle fires on the next cycle the kernel
     * evaluates — no cycle is lost and nothing is skipped past it.
     * Only meaningful in Event mode (Dense ticks everything anyway).
     */
    void
    schedule(Clocked *c, Tick at)
    {
        panic_if(c == nullptr || c->system_ != this,
                 "schedule() for unregistered component");
        scheduled_.push({std::max(at, now_), c->sysIndex_});
    }

    /**
     * Advances the clock by exactly one cycle, ticking every
     * component, and reports whether any component is still busy (the
     * idle scan rides the same call so runUntilIdle() does not pay a
     * separate per-cycle pre-scan pass).
     */
    bool
    step()
    {
        for (auto *c : components_) {
            c->tick(now_);
        }
        const Tick cycle = now_;
        ++now_;
        ++executedCycles_;
        if (observer_ != nullptr) {
            // The observer needs the full busy mask anyway, so the
            // idle scan rides the mask-building pass.
            std::uint64_t mask = 0;
            for (std::size_t i = 0; i < components_.size(); ++i) {
                if (components_[i]->busy()) {
                    mask |= std::uint64_t(1) << i;
                }
            }
            observer_->cycleExecuted(cycle, mask);
            return mask != 0;
        }
        for (auto *c : components_) {
            if (c->busy()) {
                return true;
            }
        }
        return false;
    }

    /**
     * Runs until every component reports idle, or @p max_cycles have
     * elapsed since the call.
     *
     * @return true if the system went idle, false if the cycle budget
     *         was exhausted (which callers treat as a deadlock bug).
     */
    bool
    runUntilIdle(Tick max_cycles = 2'000'000'000ULL)
    {
        const Tick limit = saturatingLimit(max_cycles);
        if (now_ >= limit) {
            return false;
        }
        if (!anyBusy()) {
            return true;
        }
        // Anything may have been reconfigured between runs (phase
        // starts, resets): every cached wakeup is stale.
        dirty_ = ~std::uint64_t(0);
        return mode_ == KernelMode::Dense ? runUntilIdleDense(limit)
                                          : runUntilIdleEvent(limit);
    }

    /** Runs for exactly @p cycles cycles (idle or not). */
    void
    run(Tick cycles)
    {
        const Tick limit = saturatingLimit(cycles);
        if (mode_ == KernelMode::Dense) {
            while (now_ < limit) {
                step();
            }
        } else {
            dirty_ = ~std::uint64_t(0);
            runEvent(limit);
        }
    }

  private:
    Tick
    saturatingLimit(Tick cycles) const
    {
        return cycles > maxTick - now_ ? maxTick : now_ + cycles;
    }

    bool
    anyBusy() const
    {
        for (auto *c : components_) {
            if (c->busy()) {
                return true;
            }
        }
        return false;
    }

    bool
    runUntilIdleDense(Tick limit)
    {
        while (now_ < limit) {
            if (!step()) {
                return true;
            }
        }
        return false;
    }

    /** Outcome of one event-kernel cycle pass. */
    struct CyclePass
    {
        bool ticked;  //!< At least one component ticked.
        Tick next;    //!< Earliest future wakeup seen (maxTick if
                      //!< ticked — pokes invalidate it anyway).
    };

    /**
     * Executes one cycle in a single pass. Each component's due-ness
     * is evaluated *at its turn* in registration order — not in a
     * separate up-front poll — because a component later in the order
     * must react in the same cycle to work pushed by an earlier one
     * (in the dense kernel its tick simply runs after the poke).
     * Non-due components get the cycle as a fast-forward
     * notification, and their wakeups are folded into a jump target:
     * if the whole pass ticked nothing, no state changed, so that
     * minimum is a safe cycle to fast-forward to. If anything ticked,
     * it may have poked components already passed, so the caller must
     * run the next cycle normally rather than jump.
     *
     * Wakeup caching: a component that declared its wakeup inputs is
     * only re-polled while its dirty bit is set — a tick of its own,
     * a tick of a declared input, or an explicit pokeWakeup() sets
     * it; otherwise its cached absolute wakeup stands. Dirty bits set
     * by a tick apply immediately, so a later component in the same
     * pass sees the poke at its turn, exactly like the uncached path.
     * Undeclared components are re-polled every executed cycle.
     */
    CyclePass
    executeCycle()
    {
        while (!scheduled_.empty() && scheduled_.top().first <= now_) {
            due_[scheduled_.top().second] = true;
            scheduled_.pop();
        }
        bool ticked = false;
        std::uint64_t tickedMask = 0;
        Tick next = maxTick;
        for (std::size_t i = 0; i < components_.size(); ++i) {
            const std::uint64_t bit = std::uint64_t(1) << i;
            Tick w;
            if (due_[i]) {
                due_[i] = false;
                w = now_;
            } else if ((dirty_ & bit) != 0 || (declared_ & bit) == 0) {
                w = components_[i]->nextWakeup(now_);
                wake_[i] = w;
                dirty_ &= ~bit;
            } else {
                w = wake_[i];
            }
            if (w <= now_) {
                components_[i]->tick(now_);
                ticked = true;
                tickedMask |= bit;
                dirty_ |= succ_[i] | bit;
            } else {
                if (components_[i]->hasFastForward()) {
                    components_[i]->fastForward(now_, now_ + 1);
                }
                next = std::min(next, w);
            }
        }
        const Tick cycle = now_;
        ++now_;
        ++executedCycles_;
        if (observer_ != nullptr) {
            observer_->cycleExecuted(cycle, tickedMask);
        }
        if (!scheduled_.empty()) {
            next = std::min(next, scheduled_.top().first);
        }
        return {ticked, next};
    }

    /** Jumps the clock to @p target, notifying every component of the
     *  skipped span so per-cycle accounting stays exact. */
    void
    fastForwardTo(Tick target)
    {
        if (target <= now_) {
            return;
        }
        for (auto *c : components_) {
            if (c->hasFastForward()) {
                c->fastForward(now_, target);
            }
        }
        if (observer_ != nullptr) {
            observer_->fastForwarded(now_, target);
        }
        now_ = target;
    }

    bool
    runUntilIdleEvent(Tick limit)
    {
        while (now_ < limit) {
            const CyclePass pass = executeCycle();
            if (pass.ticked) {
                if (!anyBusy()) {
                    return true;
                }
                continue;
            }
            // An empty cycle while busy: jump to the next wakeup (or
            // the budget limit — if every wakeup is maxTick while
            // components stay busy, that is the same deadlock the
            // dense kernel would step through as no-ops).
            fastForwardTo(std::min(pass.next, limit));
        }
        return false;
    }

    void
    runEvent(Tick limit)
    {
        while (now_ < limit) {
            const CyclePass pass = executeCycle();
            if (!pass.ticked) {
                fastForwardTo(std::min(pass.next, limit));
            }
        }
    }

    Tick now_ = 0;
    std::uint64_t executedCycles_ = 0;
    KernelMode mode_ = KernelMode::Event;
    KernelObserver *observer_ = nullptr;
    std::vector<Clocked *> components_;
    std::vector<char> due_; //!< Per-component due flag (event mode).
    std::vector<Tick> wake_; //!< Cached absolute wakeups (event mode).
    std::vector<std::uint64_t> succ_; //!< Per-src mask of dependents.
    std::uint64_t declared_ = 0; //!< Components with declared inputs.
    std::uint64_t dirty_ = ~std::uint64_t(0); //!< Stale wakeup caches.

    /** Explicitly scheduled (cycle, component index) wakeups. */
    using ScheduledTick = std::pair<Tick, std::size_t>;
    std::priority_queue<ScheduledTick, std::vector<ScheduledTick>,
                        std::greater<ScheduledTick>>
        scheduled_;
};

inline void
Clocked::pokeWakeup()
{
    if (system_ != nullptr) {
        system_->poke(*this);
    }
}

inline void
Clocked::pokeWakeup(const Clocked &other)
{
    if (other.system_ != nullptr) {
        other.system_->poke(other);
    }
}

} // namespace hwgc

#endif // HWGC_SIM_CLOCKED_H
