file(REMOVE_RECURSE
  "CMakeFiles/hwgc_mem.dir/atomic_cache.cc.o"
  "CMakeFiles/hwgc_mem.dir/atomic_cache.cc.o.d"
  "CMakeFiles/hwgc_mem.dir/dram.cc.o"
  "CMakeFiles/hwgc_mem.dir/dram.cc.o.d"
  "CMakeFiles/hwgc_mem.dir/ideal_mem.cc.o"
  "CMakeFiles/hwgc_mem.dir/ideal_mem.cc.o.d"
  "CMakeFiles/hwgc_mem.dir/interconnect.cc.o"
  "CMakeFiles/hwgc_mem.dir/interconnect.cc.o.d"
  "CMakeFiles/hwgc_mem.dir/page_table.cc.o"
  "CMakeFiles/hwgc_mem.dir/page_table.cc.o.d"
  "CMakeFiles/hwgc_mem.dir/phys_mem.cc.o"
  "CMakeFiles/hwgc_mem.dir/phys_mem.cc.o.d"
  "CMakeFiles/hwgc_mem.dir/ptw.cc.o"
  "CMakeFiles/hwgc_mem.dir/ptw.cc.o.d"
  "CMakeFiles/hwgc_mem.dir/timed_cache.cc.o"
  "CMakeFiles/hwgc_mem.dir/timed_cache.cc.o.d"
  "libhwgc_mem.a"
  "libhwgc_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hwgc_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
