# Empty dependencies file for hwgc_core.
# This may be replaced when dependencies are built.
