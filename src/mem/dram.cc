/**
 * @file
 * DRAM controller timing model implementation.
 */

#include "dram.h"

#include <algorithm>

namespace hwgc::mem
{

Dram::Dram(std::string name, const DramParams &params, PhysMem &mem)
    : MemDevice(std::move(name)), params_(params), mem_(mem),
      banks_(params.banks),
      bandwidth_("bandwidth", params.bandwidthBucket)
{
    panic_if(params_.banks == 0, "DRAM needs at least one bank");
    panic_if(params_.busBytesPerCycle <= 0.0, "bad bus bandwidth");
    hasBspHooks_ = true; // Deliveries are staged in ParallelBsp mode.
    stagedDeliveries_.reserve(params_.maxReads + params_.maxWrites);
}

unsigned
Dram::bankIndex(Addr addr) const
{
    return (addr / params_.rowBytes) % params_.banks;
}

std::uint64_t
Dram::rowIndex(Addr addr) const
{
    return addr / (params_.rowBytes * params_.banks);
}

bool
Dram::canAccept(const MemRequest &req) const
{
    if (req.isWrite()) {
        return writesInFlight_ < params_.maxWrites;
    }
    return readsInFlight_ < params_.maxReads;
}

bool
Dram::canAcceptBsp(const MemRequest &req, unsigned pendingReads,
                   unsigned pendingWrites) const
{
    if (req.isWrite()) {
        return writesInFlight_ + pendingWrites < params_.maxWrites;
    }
    return readsInFlight_ + pendingReads < params_.maxReads;
}

void
Dram::sendRequest(const MemRequest &req, Tick now)
{
    // In ParallelBsp mode requests arrive at commit, *after* this
    // cycle's tick ran — a zero-latency frontend would let the dense
    // kernel issue them one cycle earlier.
    panic_if(inBspSystem() && params_.frontendLatency == 0,
             "ParallelBsp requires DRAM frontendLatency >= 1");
    pokeWakeup(); // The new entry changes the earliest issue time.
    panic_if(!canAccept(req), "DRAM overflow: in-flight limit exceeded");
    DPRINTF(now, "DRAM", "%s: %s addr=%#llx size=%u", name().c_str(),
            req.isWrite() ? "write" : "read",
            (unsigned long long)req.paddr, req.size);
    if (req.isWrite()) {
        ++writesInFlight_;
    } else {
        ++readsInFlight_;
    }
    queue_.push_back({req, now + params_.frontendLatency, false});
}

Tick
Dram::serviceAccess(const MemRequest &req, Tick start)
{
    Bank &bank = banks_[bankIndex(req.paddr)];
    const std::uint64_t row = rowIndex(req.paddr);

    Tick t = std::max(start, bank.readyAt);

    if (bank.rowOpen && bank.openRow == row) {
        ++rowHits_;
    } else {
        ++rowMisses_;
        if (bank.rowOpen) {
            // Precharge may not cut tRAS short.
            t = std::max(t, bank.activatedAt + params_.tRAS);
            t += params_.tRP;
        }
        t += params_.tRCD;
        bank.activatedAt = t;
        ++numActivates_;
        bank.rowOpen = true;
        bank.openRow = row;
    }

    // Column access plus burst transfer over the shared data bus.
    t += params_.tCAS;
    const Tick burst = std::max<Tick>(
        1, Tick(double(req.size) / params_.busBytesPerCycle + 0.999));
    const Tick data_start = std::max(t, busFreeAt_);
    const Tick done = data_start + burst;
    busFreeAt_ = done;
    bank.readyAt = done;

    if (params_.pagePolicy == DramParams::PagePolicy::Closed) {
        bank.readyAt = std::max<Tick>(
            bank.readyAt,
            std::max(done, bank.activatedAt + params_.tRAS) + params_.tRP);
        bank.rowOpen = false;
    }
    return done;
}

int
Dram::pickNext(Tick now) const
{
    // FIFO MAS (the §VI-A ablation): strict arrival order, head-of-
    // line blocking and all — only the front may issue.
    if (params_.scheduler == DramParams::Scheduler::Fifo) {
        for (std::size_t i = 0; i < queue_.size(); ++i) {
            if (!queue_[i].issued) {
                return queue_[i].arrived <= now ? int(i) : -1;
            }
        }
        return -1;
    }

    // FR-FCFS: among requests whose bank can take a column command
    // now, prefer the first row hit, else the oldest; requests to
    // busy banks wait rather than blocking the command slot.
    int oldest_ready = -1;
    for (std::size_t i = 0; i < queue_.size(); ++i) {
        const Pending &p = queue_[i];
        if (p.issued || p.arrived > now) {
            continue;
        }
        const Bank &bank = banks_[bankIndex(p.req.paddr)];
        if (bank.readyAt > now) {
            continue;
        }
        if (bank.rowOpen && bank.openRow == rowIndex(p.req.paddr)) {
            return int(i); // First-ready row hit wins.
        }
        if (oldest_ready < 0) {
            oldest_ready = int(i);
        }
    }
    return oldest_ready;
}

void
Dram::recordTraffic(const MemRequest &req, Tick when)
{
    // DDR3 always bursts a full BL8 (64-byte) column regardless of
    // how few bytes the requester wanted — the paper's Fig 16 counts
    // bandwidth "based on 64B cache line accesses" for this reason,
    // and the energy model (Fig 23) must charge what the DRAM
    // actually moved. Sub-line requests are the unit's common case.
    const std::uint64_t moved = std::max<std::uint64_t>(req.size,
                                                        lineBytes);
    if (req.isWrite()) {
        ++numWrites_;
        bytesWritten_ += moved;
    } else {
        ++numReads_;
        bytesRead_ += moved;
    }
    bandwidth_.record(when, moved);
}

void
Dram::tick(Tick now)
{
    // Issue at most one command per controller cycle.
    const int idx = pickNext(now);
    if (idx >= 0) {
        Pending &p = queue_[idx];
        const Tick done = serviceAccess(p.req, now);
        latency_.sample(done - p.arrived + params_.frontendLatency);
        recordTraffic(p.req, done);
        completions_.push({done, p.req});
        p.issued = true;
        // Drop issued entries from the front to keep the queue short.
        while (!queue_.empty() && queue_.front().issued) {
            queue_.pop_front();
        }
    }

    // Deliver due responses. During a ParallelBsp evaluate phase the
    // delivery's side effects leave this partition (PhysMem access,
    // in-flight counters the bus polls, the upstream onResponse), so
    // only the queue pop happens here and the rest is staged. The
    // blanket evaluate-phase predicate is required (not the
    // partition-relative one): from our own tick the active partition
    // is ours, yet the responder lives wherever the bus was placed.
    const bool staging = bspEvaluatePhase();
    while (!completions_.empty() && completions_.top().at <= now) {
        const Completion c = completions_.top();
        completions_.pop();
        if (staging) {
            panic_if(!stagedDeliveries_.push(c.req),
                     "DRAM staged-delivery ring overflow");
            detail::noteStagedEvent();
            continue;
        }
        MemResponse resp;
        resp.req = c.req;
        resp.completed = now;
        if (!c.req.timingOnly) {
            mem_.execute(c.req, resp.rdata);
        }
        if (c.req.isWrite()) {
            panic_if(writesInFlight_ == 0, "write in-flight underflow");
            --writesInFlight_;
        } else {
            panic_if(readsInFlight_ == 0, "read in-flight underflow");
            --readsInFlight_;
        }
        panic_if(responder_ == nullptr, "DRAM has no responder");
        responder_->onResponse(resp, now);
    }
}

void
Dram::bspCommit(Tick now)
{
    MemRequest req;
    while (stagedDeliveries_.pop(req)) {
        MemResponse resp;
        resp.req = req;
        resp.completed = now;
        if (!req.timingOnly) {
            mem_.execute(req, resp.rdata);
        }
        if (req.isWrite()) {
            panic_if(writesInFlight_ == 0, "write in-flight underflow");
            --writesInFlight_;
        } else {
            panic_if(readsInFlight_ == 0, "read in-flight underflow");
            --readsInFlight_;
        }
        panic_if(responder_ == nullptr, "DRAM has no responder");
        responder_->onResponse(resp, now);
    }
}

bool
Dram::busy() const
{
    return !queue_.empty() || !completions_.empty();
}

CycleClass
Dram::cycleClass(Tick now) const
{
    (void)now;
    // The controller is the endpoint of the memory system: any queued
    // or in-flight access means it is doing its job. The default
    // classifier would report bank/bus latency waits as upstream
    // starvation, which is meaningless for a device.
    return busy() ? CycleClass::Busy : CycleClass::Idle;
}

Tick
Dram::nextWakeup(Tick) const
{
    Tick next = completions_.empty() ? maxTick : completions_.top().at;
    if (params_.scheduler == DramParams::Scheduler::Fifo) {
        // Only the front unissued entry can issue; it waits solely on
        // its arrival time (serviceAccess absorbs bank readiness).
        for (const auto &p : queue_) {
            if (!p.issued) {
                next = std::min(next, p.arrived);
                break;
            }
        }
        return next;
    }
    // FR-FCFS: an entry becomes issuable once it has arrived and its
    // bank can take a column command.
    for (const auto &p : queue_) {
        if (p.issued) {
            continue;
        }
        next = std::min(
            next,
            std::max(p.arrived, banks_[bankIndex(p.req.paddr)].readyAt));
    }
    return next;
}

Tick
Dram::accessAtomic(const MemRequest &req, Tick now,
                   std::array<Word, maxReqWords> &rdata)
{
    const Tick start = now + params_.frontendLatency;
    const Tick done = serviceAccess(req, start);
    recordTraffic(req, done);
    latency_.sample(done - now);
    if (!req.timingOnly) {
        mem_.execute(req, rdata);
    }
    return done - now;
}

void
Dram::save(checkpoint::Serializer &ser) const
{
    panic_if(!stagedDeliveries_.empty(),
             "DRAM '%s' checkpointed mid-evaluate", name().c_str());
    ser.putU64(banks_.size());
    for (const auto &bank : banks_) {
        ser.putBool(bank.rowOpen);
        ser.putU64(bank.openRow);
        ser.putU64(bank.readyAt);
        ser.putU64(bank.activatedAt);
    }
    ser.putU64(busFreeAt_);
    ser.putU64(queue_.size());
    for (const auto &p : queue_) {
        saveRequest(ser, p.req);
        ser.putU64(p.arrived);
        ser.putBool(p.issued);
    }
    ser.putU64(readsInFlight_);
    ser.putU64(writesInFlight_);
    // Drain a copy of the completion heap in deterministic (sorted)
    // order; re-pushing on restore rebuilds an equivalent heap.
    auto completions = completions_;
    ser.putU64(completions.size());
    while (!completions.empty()) {
        const Completion c = completions.top();
        completions.pop();
        ser.putU64(c.at);
        saveRequest(ser, c.req);
    }
    checkpoint::putStat(ser, numReads_);
    checkpoint::putStat(ser, numWrites_);
    checkpoint::putStat(ser, bytesRead_);
    checkpoint::putStat(ser, bytesWritten_);
    checkpoint::putStat(ser, rowHits_);
    checkpoint::putStat(ser, rowMisses_);
    checkpoint::putStat(ser, numActivates_);
    checkpoint::putStat(ser, bandwidth_);
    checkpoint::putStat(ser, latency_);
}

void
Dram::restore(checkpoint::Deserializer &des)
{
    const std::uint64_t num_banks = des.getU64();
    fatal_if(num_banks != banks_.size(),
             "checkpoint '%s': DRAM has %llu banks but this "
             "configuration has %zu — configurations differ",
             des.origin().c_str(), (unsigned long long)num_banks,
             banks_.size());
    for (auto &bank : banks_) {
        bank.rowOpen = des.getBool();
        bank.openRow = des.getU64();
        bank.readyAt = des.getU64();
        bank.activatedAt = des.getU64();
    }
    busFreeAt_ = des.getU64();
    queue_.clear();
    const std::uint64_t num_queued = des.getU64();
    for (std::uint64_t i = 0; i < num_queued; ++i) {
        Pending p;
        p.req = restoreRequest(des);
        p.arrived = des.getU64();
        p.issued = des.getBool();
        queue_.push_back(p);
    }
    readsInFlight_ = unsigned(des.getU64());
    writesInFlight_ = unsigned(des.getU64());
    completions_ = {};
    const std::uint64_t num_completions = des.getU64();
    for (std::uint64_t i = 0; i < num_completions; ++i) {
        Completion c;
        c.at = des.getU64();
        c.req = restoreRequest(des);
        completions_.push(c);
    }
    checkpoint::getStat(des, numReads_);
    checkpoint::getStat(des, numWrites_);
    checkpoint::getStat(des, bytesRead_);
    checkpoint::getStat(des, bytesWritten_);
    checkpoint::getStat(des, rowHits_);
    checkpoint::getStat(des, rowMisses_);
    checkpoint::getStat(des, numActivates_);
    checkpoint::getStat(des, bandwidth_);
    checkpoint::getStat(des, latency_);
}

void
Dram::resetStats()
{
    numReads_.reset();
    numWrites_.reset();
    bytesRead_.reset();
    bytesWritten_.reset();
    rowHits_.reset();
    rowMisses_.reset();
    numActivates_.reset();
    bandwidth_.reset();
    latency_.reset();
}

Dram::DebugState
Dram::debugState() const
{
    DebugState state;
    for (const auto &p : queue_) {
        state.queued += !p.issued;
    }
    state.completionsPending = completions_.size();
    state.readsInFlight = readsInFlight_;
    state.writesInFlight = writesInFlight_;
    state.busFreeAt = busFreeAt_;
    if (!queue_.empty()) {
        const auto &front = queue_.front();
        state.firstBankReadyAt =
            banks_[bankIndex(front.req.paddr)].readyAt;
    }
    return state;
}

void
Dram::resetBankState()
{
    for (auto &bank : banks_) {
        bank = Bank{};
    }
    busFreeAt_ = 0;
}

} // namespace hwgc::mem
